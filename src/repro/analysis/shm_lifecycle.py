"""Pass 5b — shared-memory segment lifecycle (ET502/ET503/ET504).

A path-sensitive state machine over raw ``SharedMemory`` values:
``created/attached → (used) → closed → unlinked``. Tracked values are
locals bound from a mapping-acquiring call — a ``SharedMemory(...)``
construction or a call to a scanned helper whose return annotation says
it returns one (``_attach_untracked``). Each path through the enclosing
function (including exceptional paths, per the protocol walker's
semantics) must leave every tracked mapping **closed or escaped**:

- **ET502** — a mapped segment falls out of scope on some path without
  ``close()``/ownership transfer (the classic leak-on-branch:
  ``probe.unlink()`` raising before ``probe.close()`` runs);
- **ET503** — ``.buf`` is dereferenced after ``close()`` on some path;
- **ET504** — the same raw mapping is ``unlink()``-ed twice on one path
  (``SharedWeightStore.unlink`` is idempotent by contract; raw
  ``SharedMemory.unlink`` is not).

Ownership escapes — returning the mapping, passing it to another call,
storing it on ``self`` or in a container — end tracking: the recipient
owns the lifecycle from there.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from repro.analysis.callgraph import FuncNode, resolve_call
from repro.analysis.findings import Finding, make_finding
from repro.analysis.protocol import PathEnd, ProtocolChecker
from repro.analysis.resolve import callee_name, dotted_callee

if TYPE_CHECKING:
    from repro.analysis.runner import AnalysisContext, SourceFile

#: (mapped, unlinked, escaped, creation line)
Status = tuple[bool, bool, bool, int]
#: sorted ((var, status), ...) pairs — hashable, deterministic repr
State = tuple[tuple[str, Status], ...]

EMPTY: State = ()


def _get(state: State, var: str) -> Status | None:
    for name, status in state:
        if name == var:
            return status
    return None


def _set(state: State, var: str, status: Status | None) -> State:
    entries = {name: st for name, st in state}
    if status is None:
        entries.pop(var, None)
    else:
        entries[var] = status
    return tuple(sorted(entries.items()))


def _is_acquire(call: ast.Call, sf: "SourceFile",
                ctx: "AnalysisContext") -> bool:
    """Does this call return a fresh raw SharedMemory mapping?"""
    dotted = dotted_callee(call)
    if dotted is not None and dotted.rsplit(".", 1)[-1] == "SharedMemory":
        return True
    qual = resolve_call(call, sf.module, None, ctx.symbols)
    if qual is None and isinstance(call.func, ast.Name):
        qual = f"{sf.module}:{call.func.id}"
    info = ctx.symbols.function(qual) if qual else None
    if info is not None and info.node.returns is not None:
        return "SharedMemory" in ast.unparse(info.node.returns)
    return False


class _ShmPass:
    """One function's lifecycle walk; collects deduplicated findings."""

    def __init__(self, sf: "SourceFile", ctx: "AnalysisContext") -> None:
        self.sf = sf
        self.ctx = ctx
        self.findings: dict[tuple[str, int, str], Finding] = {}

    def _report(self, rule: str, line: int, var: str, message: str) -> None:
        key = (rule, line, var)
        if key not in self.findings:
            self.findings[key] = make_finding(
                rule, self.sf.display, line, 0, message)

    # ---- transfer function ------------------------------------------------

    def _escapes_in(self, expr: ast.expr, state: State) -> set[str]:
        """Tracked names that transfer ownership inside ``expr``."""
        out: set[str] = set()
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                    inner = arg.value if isinstance(arg, ast.Starred) else arg
                    if isinstance(inner, ast.Name) \
                            and _get(state, inner.id) is not None:
                        out.add(inner.id)
            elif isinstance(sub, (ast.Tuple, ast.List, ast.Set, ast.Dict)):
                for elt in ast.walk(sub):
                    if isinstance(elt, ast.Name) \
                            and _get(state, elt.id) is not None:
                        out.add(elt.id)
        return out

    def step(self, state: State, node: ast.AST) -> State:
        calls = sorted(
            (c for c in ast.walk(node) if isinstance(c, ast.Call)),
            key=lambda c: (c.lineno, c.col_offset))
        # Uses: .buf on a closed mapping.
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute) and sub.attr == "buf" \
                    and isinstance(sub.value, ast.Name):
                status = _get(state, sub.value.id)
                if status is not None and not status[0] and not status[2]:
                    self._report(
                        "ET503", sub.lineno, sub.value.id,
                        f"'{sub.value.id}.buf' dereferenced after close() "
                        f"(mapping released at this point on some path)")
        # Lifecycle method calls and ownership escapes.
        for call in calls:
            func = call.func
            if isinstance(func, ast.Attribute) \
                    and isinstance(func.value, ast.Name):
                status = _get(state, func.value.id)
                if status is not None:
                    mapped, unlinked, escaped, born = status
                    if func.attr == "close":
                        state = _set(state, func.value.id,
                                     (False, unlinked, escaped, born))
                        continue
                    if func.attr == "unlink":
                        if unlinked and not escaped:
                            self._report(
                                "ET504", call.lineno, func.value.id,
                                f"'{func.value.id}' unlink()ed twice on one "
                                f"path; raw SharedMemory.unlink raises "
                                f"FileNotFoundError the second time")
                        state = _set(state, func.value.id,
                                     (mapped, True, escaped, born))
                        continue
        for var in self._escapes_in(
                node if isinstance(node, ast.expr) else _exprs_of(node),
                state):
            status = _get(state, var)
            if status is not None:
                state = _set(state, var,
                             (status[0], status[1], True, status[3]))
        # Bindings: acquisition, rename, store-to-attribute.
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            value = node.value
            if isinstance(target, ast.Name):
                if isinstance(value, ast.Call) \
                        and _is_acquire(value, self.sf, self.ctx):
                    state = _set(state, target.id,
                                 (True, False, False, node.lineno))
                elif isinstance(value, ast.Name):
                    status = _get(state, value.id)
                    if status is not None:  # rename: target takes ownership
                        state = _set(state, value.id, None)
                        state = _set(state, target.id, status)
            elif isinstance(value, ast.Name):
                status = _get(state, value.id)
                if status is not None:  # stored into attr/subscript: escapes
                    state = _set(state, value.id,
                                 (status[0], status[1], True, status[3]))
        if isinstance(node, (ast.Return, ast.Raise)):
            # `return SharedMemory(...)` / `return shm` hands ownership out.
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name):
                    status = _get(state, sub.id)
                    if status is not None:
                        state = _set(state, sub.id,
                                     (status[0], status[1], True, status[3]))
        return state

    def may_raise(self, stmt: ast.stmt) -> bool:
        for call in (c for c in ast.walk(stmt) if isinstance(c, ast.Call)):
            name = callee_name(call)
            if name == "unlink" or _is_acquire(call, self.sf, self.ctx):
                return True
        return False

    # ---- path-end check ---------------------------------------------------

    def finish(self, ends: list[PathEnd], func: FuncNode) -> None:
        for end in ends:
            state = end.state
            assert isinstance(state, tuple)
            for var, (mapped, _unlinked, escaped, born) in state:
                if mapped and not escaped:
                    how = ("an exception path" if end.exceptional
                           else "a normal return path")
                    line = getattr(end.node, "lineno", func.lineno)
                    self._report(
                        "ET502", born, var,
                        f"'{var}' (mapped at line {born}) leaks on {how} "
                        f"ending near line {line}: no close() or ownership "
                        f"transfer before scope exit")


def _exprs_of(stmt: ast.AST) -> ast.AST:
    """The value-position subtree of a statement (for escape scanning)."""
    if isinstance(stmt, ast.Assign):
        return stmt.value
    if isinstance(stmt, (ast.Expr, ast.Return)) and stmt.value is not None:
        return stmt.value
    return stmt


def _functions(tree: ast.Module) -> list[FuncNode]:
    return [node for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))]


def check_shm_lifecycle(sf: "SourceFile",
                        ctx: "AnalysisContext") -> list[Finding]:
    """Run the segment-lifecycle state machine over one file."""
    findings: list[Finding] = []
    for func in _functions(sf.tree):
        has_acquire = any(
            isinstance(c, ast.Call) and _is_acquire(c, sf, ctx)
            for c in ast.walk(func))
        if not has_acquire:
            continue
        shm_pass = _ShmPass(sf, ctx)
        checker = ProtocolChecker(step=shm_pass.step,
                                  may_raise=shm_pass.may_raise)
        ends = checker.run(func, EMPTY)
        shm_pass.finish(ends, func)
        findings.extend(shm_pass.findings.values())
    return findings
