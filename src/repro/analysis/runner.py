"""Discovery and orchestration for the five `etlint` passes.

The runner parses every Python file under the given paths once, builds the
shared static context (per-module constant environments, the device-spec
table, the scanned-class lock map), runs each pass over each file, then
applies inline suppressions and the baseline.

Inline suppression: a line (or the line directly above it) containing
``# etlint: disable=ET301`` (comma-separated ids, or ``all``) silences
those rules for findings anchored on that line. Suppressions should carry
a reason, e.g.::

    self._t0 = time.monotonic()  # etlint: disable=ET301 timing boundary
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding
from repro.analysis.resolve import ConstEnv, device_specs, module_constants

_DISABLE_RE = re.compile(r"#\s*etlint:\s*disable=([A-Za-z0-9_,]+)")


@dataclass
class SourceFile:
    """One parsed file plus the derived context the passes consume."""

    path: Path
    display: str
    module: str
    tree: ast.Module
    lines: list[str]
    env: ConstEnv = field(default_factory=dict)

    def source_line(self, lineno: int) -> str:
        """1-indexed physical line, empty string when out of range."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


@dataclass
class AnalysisContext:
    """Cross-file facts shared by every pass."""

    files: list[SourceFile]
    modules: dict[str, ast.Module]
    devices: dict[str, int]
    lockless_classes: set[str]


@dataclass
class AnalysisReport:
    """The outcome of one analysis run."""

    findings: list[Finding]
    files_scanned: int
    suppressed_inline: int
    suppressed_baseline: int
    parse_errors: list[str] = field(default_factory=list)


PassFn = Callable[[SourceFile, AnalysisContext], list[Finding]]


def _iter_py_files(paths: Sequence[Path]) -> Iterable[Path]:
    seen: set[Path] = set()
    for path in paths:
        candidates: Iterable[Path]
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def module_name_for(path: Path) -> str:
    """Dotted module name: rooted at ``repro`` when inside the package."""
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
        return ".".join(parts) if parts else "repro"
    return parts[-1] if parts else str(path)


def _display_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def load_files(paths: Sequence[Path], root: Path,
               errors: list[str]) -> list[SourceFile]:
    """Parse every ``.py`` file under ``paths`` (reporting parse failures)."""
    files: list[SourceFile] = []
    for py in _iter_py_files(paths):
        try:
            text = py.read_text(encoding="utf-8")
            tree = ast.parse(text, filename=str(py))
        except (OSError, SyntaxError, ValueError) as exc:
            errors.append(f"{py}: {exc}")
            continue
        files.append(SourceFile(
            path=py,
            display=_display_path(py, root),
            module=module_name_for(py),
            tree=tree,
            lines=text.splitlines(),
        ))
    return files


def build_context(files: list[SourceFile]) -> AnalysisContext:
    """Assemble the shared static context from the parsed files."""
    from repro.analysis.thread_safety import lockless_class_names

    modules = {sf.module: sf.tree for sf in files}
    for sf in files:
        sf.env = module_constants(sf.tree, modules)
    return AnalysisContext(
        files=files,
        modules=modules,
        devices=device_specs(modules),
        lockless_classes=lockless_class_names([sf.tree for sf in files]),
    )


def default_passes() -> dict[str, PassFn]:
    """The five passes, keyed by their rule-family prefix."""
    from repro.analysis.determinism import check_determinism
    from repro.analysis.fp16_safety import check_fp16_safety
    from repro.analysis.kernel_contract import check_kernel_contract
    from repro.analysis.process_safety import check_process_safety
    from repro.analysis.thread_safety import check_thread_safety

    return {
        "ET1": check_kernel_contract,
        "ET2": check_fp16_safety,
        "ET3": check_determinism,
        "ET4": check_thread_safety,
        "ET5": check_process_safety,
    }


def _disabled_rules(sf: SourceFile, lineno: int) -> set[str]:
    """Rule ids inline-disabled for a finding anchored at ``lineno``.

    A trailing comment applies to its own line; a comment-only line
    applies to the line below it (so a disable never leaks from one
    statement onto the next).
    """
    previous = sf.source_line(lineno - 1)
    candidates = [sf.source_line(lineno)]
    if previous.lstrip().startswith("#"):
        candidates.append(previous)
    disabled: set[str] = set()
    for line in candidates:
        match = _DISABLE_RE.search(line)
        if match:
            disabled.update(
                token.strip().upper()
                for token in match.group(1).split(",") if token.strip())
    return disabled


def _is_suppressed_inline(sf: SourceFile, finding: Finding) -> bool:
    disabled = _disabled_rules(sf, finding.line)
    return bool(disabled) and (finding.rule_id in disabled or "ALL" in disabled)


def run_analysis(
    paths: Sequence[Path],
    root: Path | None = None,
    baseline: Baseline | None = None,
    rule_filter: Callable[[str], bool] | None = None,
) -> AnalysisReport:
    """Analyze ``paths`` and return the surviving findings.

    ``rule_filter`` restricts reporting to matching rule ids (used by
    ``--rules``); inline suppressions and the baseline apply after it.
    """
    root = root or Path.cwd()
    errors: list[str] = []
    files = load_files(paths, root, errors)
    ctx = build_context(files)
    raw: list[tuple[Finding, str]] = []
    inline_suppressed = 0
    for sf in files:
        for check in default_passes().values():
            for finding in check(sf, ctx):
                if rule_filter is not None and not rule_filter(finding.rule_id):
                    continue
                if _is_suppressed_inline(sf, finding):
                    inline_suppressed += 1
                    continue
                raw.append((finding, sf.source_line(finding.line)))
    baseline_suppressed = 0
    if baseline is not None:
        survivors, baseline_suppressed = baseline.filter(raw)
    else:
        survivors = [finding for finding, _ in raw]
    survivors.sort(key=Finding.sort_key)
    return AnalysisReport(
        findings=survivors,
        files_scanned=len(files),
        suppressed_inline=inline_suppressed,
        suppressed_baseline=baseline_suppressed,
        parse_errors=errors,
    )


def findings_with_lines(
    paths: Sequence[Path], root: Path | None = None,
) -> list[tuple[Finding, str]]:
    """Raw (finding, source line) pairs — what ``--write-baseline`` covers.

    Inline suppressions still apply (they are the preferred mechanism and
    should not leak into a generated baseline).
    """
    root = root or Path.cwd()
    errors: list[str] = []
    files = load_files(paths, root, errors)
    ctx = build_context(files)
    raw: list[tuple[Finding, str]] = []
    for sf in files:
        for check in default_passes().values():
            for finding in check(sf, ctx):
                if not _is_suppressed_inline(sf, finding):
                    raw.append((finding, sf.source_line(finding.line)))
    raw.sort(key=lambda pair: pair[0].sort_key())
    return raw
