"""Discovery and orchestration for the `etlint` passes.

The runner parses every Python file under the given paths once, builds the
shared static context — per-module constant environments, the device-spec
table, the scanned-class lock map, and the v2 substrate (project symbol
table, call graph, one-level function summaries) — runs each pass over
each file, then applies inline suppressions and the baseline.

Inline suppression: a line (or the line directly above it) containing
``# etlint: disable=ET301`` (comma-separated ids, or ``all``) silences
those rules for findings anchored on that line. Suppressions should carry
a reason, e.g.::

    self._t0 = time.monotonic()  # etlint: disable=ET301 timing boundary

A suppression that silences nothing is itself reported (ET001, WARNING)
so stale disables cannot accumulate; ``--strict-suppressions`` promotes
those warnings to CI failures. When ``rule_filter`` restricts the run to
a subset of rules, ET001 is skipped — a suppression for an un-run rule
is not evidence of staleness.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.callgraph import CallGraph, SymbolTable, build_callgraph, \
    build_symbols
from repro.analysis.dataflow import SummaryTable
from repro.analysis.findings import Finding, make_finding
from repro.analysis.resolve import ConstEnv, device_specs, module_constants

if TYPE_CHECKING:
    from repro.analysis.cache import FindingsCache

_DISABLE_RE = re.compile(r"#\s*etlint:\s*disable=([A-Za-z0-9_,]+)")


@dataclass
class SourceFile:
    """One parsed file plus the derived context the passes consume."""

    path: Path
    display: str
    module: str
    tree: ast.Module
    lines: list[str]
    env: ConstEnv = field(default_factory=dict)
    sha: str = ""

    def source_line(self, lineno: int) -> str:
        """1-indexed physical line, empty string when out of range."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


@dataclass
class AnalysisContext:
    """Cross-file facts shared by every pass."""

    files: list[SourceFile]
    modules: dict[str, ast.Module]
    devices: dict[str, int]
    lockless_classes: set[str]
    symbols: SymbolTable
    callgraph: CallGraph
    summaries: SummaryTable
    #: per-run memo space for project-wide passes (computed once,
    #: reported per file) — keyed by pass name
    scratch: dict[str, object] = field(default_factory=dict)


@dataclass
class AnalysisReport:
    """The outcome of one analysis run."""

    findings: list[Finding]
    files_scanned: int
    suppressed_inline: int
    suppressed_baseline: int
    parse_errors: list[str] = field(default_factory=list)
    unused_suppressions: int = 0
    from_cache: int = 0


PassFn = Callable[[SourceFile, AnalysisContext], list[Finding]]


def _iter_py_files(paths: Sequence[Path]) -> Iterable[Path]:
    seen: set[Path] = set()
    for path in paths:
        candidates: Iterable[Path]
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def module_name_for(path: Path) -> str:
    """Dotted module name: rooted at ``repro`` when inside the package."""
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
        return ".".join(parts) if parts else "repro"
    return parts[-1] if parts else str(path)


def _display_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def load_files(paths: Sequence[Path], root: Path,
               errors: list[str]) -> list[SourceFile]:
    """Parse every ``.py`` file under ``paths`` (reporting parse failures)."""
    files: list[SourceFile] = []
    for py in _iter_py_files(paths):
        try:
            text = py.read_text(encoding="utf-8")
            tree = ast.parse(text, filename=str(py))
        except (OSError, SyntaxError, ValueError) as exc:
            errors.append(f"{py}: {exc}")
            continue
        files.append(SourceFile(
            path=py,
            display=_display_path(py, root),
            module=module_name_for(py),
            tree=tree,
            lines=text.splitlines(),
            sha=hashlib.sha256(text.encode("utf-8")).hexdigest(),
        ))
    return files


def project_digest(files: list[SourceFile]) -> str:
    """Content digest over the whole analyzed tree.

    Interprocedural passes make every file's findings depend on every
    other file, so cached per-file results are only valid against the
    exact tree they were computed in.
    """
    h = hashlib.sha256()
    for sf in sorted(files, key=lambda s: s.display):
        h.update(sf.display.encode("utf-8"))
        h.update(sf.sha.encode("utf-8"))
    return h.hexdigest()


def build_context(files: list[SourceFile]) -> AnalysisContext:
    """Assemble the shared static context from the parsed files."""
    from repro.analysis.thread_safety import lockless_class_names

    modules = {sf.module: sf.tree for sf in files}
    for sf in files:
        sf.env = module_constants(sf.tree, modules)
    symbols = build_symbols(files)
    return AnalysisContext(
        files=files,
        modules=modules,
        devices=device_specs(modules),
        lockless_classes=lockless_class_names([sf.tree for sf in files]),
        symbols=symbols,
        callgraph=build_callgraph(symbols),
        summaries=SummaryTable(symbols, {sf.module: sf.env for sf in files}),
    )


def default_passes() -> dict[str, PassFn]:
    """Every pass, keyed by family name."""
    from repro.analysis.determinism import check_determinism
    from repro.analysis.event_protocol import check_event_protocol
    from repro.analysis.fp16_safety import check_fp16_safety
    from repro.analysis.kernel_contract import check_kernel_contract
    from repro.analysis.locks import check_lock_order
    from repro.analysis.process_safety import check_process_safety
    from repro.analysis.shm_lifecycle import check_shm_lifecycle
    from repro.analysis.thread_safety import check_thread_safety

    return {
        "kernel-contract": check_kernel_contract,    # ET1xx
        "fp16-safety": check_fp16_safety,            # ET2xx
        "determinism": check_determinism,            # ET3xx
        "thread-safety": check_thread_safety,        # ET4xx
        "process-safety": check_process_safety,      # ET501
        "shm-lifecycle": check_shm_lifecycle,        # ET502-ET504
        "lock-order": check_lock_order,              # ET6xx
        "event-protocol": check_event_protocol,      # ET7xx
    }


@dataclass
class _Suppression:
    """One ``# etlint: disable=...`` comment in a file."""

    comment_line: int
    target_line: int
    tokens: set[str]
    used: bool = False


def _comment_lines(sf: SourceFile) -> set[int]:
    """1-indexed lines carrying a real COMMENT token.

    Tokenizing (rather than regex-matching raw lines) keeps disable
    examples inside docstrings from acting as — or being reported as —
    suppressions.
    """
    import io
    import tokenize

    lines: set[int] = set()
    reader = io.StringIO("\n".join(sf.lines) + "\n").readline
    try:
        for tok in tokenize.generate_tokens(reader):
            if tok.type == tokenize.COMMENT:
                lines.add(tok.start[0])
    except (tokenize.TokenizeError, IndentationError, SyntaxError):
        # Fall back to treating every line as commentable; the file
        # parsed as AST, so this should not happen in practice.
        return set(range(1, len(sf.lines) + 1))
    return lines


def _suppression_comments(sf: SourceFile) -> list[_Suppression]:
    commented = _comment_lines(sf)
    out: list[_Suppression] = []
    for i, line in enumerate(sf.lines, start=1):
        if i not in commented:
            continue
        match = _DISABLE_RE.search(line)
        if not match:
            continue
        tokens = {token.strip().upper()
                  for token in match.group(1).split(",") if token.strip()}
        target = i + 1 if line.lstrip().startswith("#") else i
        out.append(_Suppression(comment_line=i, target_line=target,
                                tokens=tokens))
    return out


def _suppressing_comment(
        comments: list[_Suppression], finding: Finding) -> _Suppression | None:
    for comment in comments:
        if comment.target_line == finding.line and \
                (finding.rule_id in comment.tokens or "ALL" in comment.tokens):
            return comment
    return None


def _disabled_rules(sf: SourceFile, lineno: int) -> set[str]:
    """Rule ids inline-disabled for a finding anchored at ``lineno``.

    A trailing comment applies to its own line; a comment-only line
    applies to the line below it (so a disable never leaks from one
    statement onto the next).
    """
    disabled: set[str] = set()
    for comment in _suppression_comments(sf):
        if comment.target_line == lineno:
            disabled.update(comment.tokens)
    return disabled


def _is_suppressed_inline(sf: SourceFile, finding: Finding) -> bool:
    disabled = _disabled_rules(sf, finding.line)
    return bool(disabled) and (finding.rule_id in disabled or "ALL" in disabled)


def _raw_findings_for(sf: SourceFile, ctx: AnalysisContext,
                      passes: dict[str, PassFn]) -> list[Finding]:
    found: list[Finding] = []
    for check in passes.values():
        found.extend(check(sf, ctx))
    return found


def _collect(
    files: list[SourceFile],
    ctx: AnalysisContext,
    rule_filter: Callable[[str], bool] | None,
    cache: "FindingsCache | None" = None,
) -> tuple[list[tuple[Finding, str]], int, list[Finding], int]:
    """Run the passes: (raw survivors, inline-suppressed, ET001, cached)."""
    passes = default_passes()
    digest = project_digest(files) if cache is not None else ""
    raw: list[tuple[Finding, str]] = []
    inline_suppressed = 0
    unused: list[Finding] = []
    from_cache = 0
    for sf in files:
        found = cache.get(sf, digest) if cache is not None else None
        if found is None:
            found = _raw_findings_for(sf, ctx, passes)
            if cache is not None:
                cache.put(sf, digest, found)
        else:
            from_cache += 1
        comments = _suppression_comments(sf)
        for finding in found:
            suppressor = _suppressing_comment(comments, finding)
            if suppressor is not None:
                suppressor.used = True
            if rule_filter is not None and not rule_filter(finding.rule_id):
                continue
            if suppressor is not None:
                inline_suppressed += 1
                continue
            raw.append((finding, sf.source_line(finding.line)))
        if rule_filter is None:
            for comment in comments:
                if not comment.used:
                    ids = ",".join(sorted(comment.tokens))
                    unused.append(make_finding(
                        "ET001", sf.display, comment.comment_line, 0,
                        f"unused suppression 'etlint: disable={ids}': no "
                        f"matching finding is anchored on line "
                        f"{comment.target_line}"))
    return raw, inline_suppressed, unused, from_cache


def run_analysis(
    paths: Sequence[Path],
    root: Path | None = None,
    baseline: Baseline | None = None,
    rule_filter: Callable[[str], bool] | None = None,
    cache: "FindingsCache | None" = None,
) -> AnalysisReport:
    """Analyze ``paths`` and return the surviving findings.

    ``rule_filter`` restricts reporting to matching rule ids (used by
    ``--rules``); inline suppressions and the baseline apply after it.
    ``cache`` (a :class:`repro.analysis.cache.FindingsCache`) reuses
    per-file findings when neither the file nor the rest of the tree
    changed since the cached run.
    """
    root = root or Path.cwd()
    errors: list[str] = []
    files = load_files(paths, root, errors)
    ctx = build_context(files)
    raw, inline_suppressed, unused, from_cache = _collect(
        files, ctx, rule_filter, cache)
    baseline_suppressed = 0
    if baseline is not None:
        survivors, baseline_suppressed = baseline.filter(raw)
    else:
        survivors = [finding for finding, _ in raw]
    survivors.extend(unused)  # ET001 is meta: never baselined
    survivors.sort(key=Finding.sort_key)
    return AnalysisReport(
        findings=survivors,
        files_scanned=len(files),
        suppressed_inline=inline_suppressed,
        suppressed_baseline=baseline_suppressed,
        parse_errors=errors,
        unused_suppressions=len(unused),
        from_cache=from_cache,
    )


def findings_with_lines(
    paths: Sequence[Path], root: Path | None = None,
) -> list[tuple[Finding, str]]:
    """Raw (finding, source line) pairs — what ``--write-baseline`` covers.

    Inline suppressions still apply (they are the preferred mechanism and
    should not leak into a generated baseline); ET001 meta-warnings are
    excluded (a baseline must never hide a stale suppression).
    """
    root = root or Path.cwd()
    errors: list[str] = []
    files = load_files(paths, root, errors)
    ctx = build_context(files)
    raw, _suppressed, _unused, _cached = _collect(files, ctx, None)
    raw.sort(key=lambda pair: pair[0].sort_key())
    return raw
