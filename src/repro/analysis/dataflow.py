"""Constant and alias propagation for the analysis substrate.

:mod:`repro.analysis.resolve` folds expressions over *module-level*
constants only, which is why etlint v1 demanded literals at the checked
call site. This module adds the two missing levels:

- **intraprocedural**: :func:`function_env` interprets a function body in
  statement order, binding every local whose right-hand side folds;
  branches keep only agreeing bindings and loops kill what they assign,
  so a binding is only ever a value the local *must* hold at that point;
- **one interprocedural level**: :class:`SummaryTable` gives each scanned
  function a summary — its foldable return expression and the statically
  checkable call sites its body contains — so a caller can fold
  ``helper(256)`` (return-value summaries) and a checker can re-evaluate
  a helper's body under a caller's constant arguments (forwarded-site
  summaries). Summaries never recurse: folding a callee's body resolves
  nested calls by plain constant folding only, which keeps the analysis
  linear and termination trivial.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.analysis.callgraph import FuncNode, FunctionInfo, SymbolTable
from repro.analysis.resolve import ConstEnv, fold

#: Called once per interpreted statement with the env *before* it runs.
Observer = Callable[[ast.stmt, Mapping[str, float]], None]


def _assigned_names(node: ast.AST) -> set[str]:
    """Every plain local name a statement (sub)tree assigns."""
    names: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign):
            for target in sub.targets:
                names.update(_target_names(target))
        elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
            names.update(_target_names(sub.target))
        elif isinstance(sub, (ast.For, ast.comprehension)):
            names.update(_target_names(sub.target))
        elif isinstance(sub, ast.withitem) and sub.optional_vars is not None:
            names.update(_target_names(sub.optional_vars))
    return names


def _target_names(target: ast.expr) -> set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        out: set[str] = set()
        for elt in target.elts:
            out.update(_target_names(elt))
        return out
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return set()


class Folder:
    """Constant folding that can also resolve calls to summarized helpers."""

    def __init__(self, summaries: "SummaryTable | None" = None) -> None:
        self.summaries = summaries

    def fold(self, node: ast.expr, env: Mapping[str, float]) -> float | None:
        """:func:`repro.analysis.resolve.fold` plus one call level."""
        value = fold(node, env)
        if value is not None:
            return value
        if isinstance(node, ast.Call) and self.summaries is not None:
            return self.summaries.return_value(node, env, self)
        if isinstance(node, ast.BinOp):
            # Retry binops whose operands need the call-aware folder.
            left = self.fold(node.left, env)
            right = self.fold(node.right, env)
            if left is None or right is None:
                return None
            rebuilt = ast.BinOp(
                left=ast.Constant(value=left), op=node.op,
                right=ast.Constant(value=right))
            return fold(ast.copy_location(rebuilt, node), {})
        return None

    def fold_int(self, node: ast.expr,
                 env: Mapping[str, float]) -> int | None:
        value = self.fold(node, env)
        if value is None or value != int(value):
            return None
        return int(value)


def _interpret_block(stmts: list[ast.stmt], env: ConstEnv,
                     folder: Folder,
                     observer: Observer | None = None) -> ConstEnv:
    """Interpret statements in order, updating ``env`` conservatively."""
    for stmt in stmts:
        if observer is not None:
            observer(stmt, env)
        if isinstance(stmt, ast.Assign):
            value = folder.fold(stmt.value, env)
            for target in stmt.targets:
                for name in _target_names(target):
                    if isinstance(target, ast.Name) and value is not None:
                        env[name] = value
                    else:
                        env.pop(name, None)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            names = _target_names(stmt.target)
            value = folder.fold(stmt.value, env)
            for name in names:
                if isinstance(stmt.target, ast.Name) and value is not None:
                    env[name] = value
                else:
                    env.pop(name, None)
        elif isinstance(stmt, ast.AugAssign):
            for name in _target_names(stmt.target):
                current = env.get(name)
                folded = folder.fold(stmt.value, env)
                if current is not None and folded is not None \
                        and isinstance(stmt.target, ast.Name):
                    rebuilt = ast.BinOp(left=ast.Constant(value=current),
                                        op=stmt.op,
                                        right=ast.Constant(value=folded))
                    result = fold(ast.copy_location(rebuilt, stmt), {})
                    if result is not None:
                        env[name] = result
                        continue
                env.pop(name, None)
        elif isinstance(stmt, ast.If):
            then_env = _interpret_block(stmt.body, dict(env), folder,
                                        observer)
            else_env = _interpret_block(stmt.orelse, dict(env), folder,
                                        observer)
            for name in _assigned_names(stmt):
                if then_env.get(name) is not None \
                        and then_env.get(name) == else_env.get(name):
                    env[name] = then_env[name]
                else:
                    env.pop(name, None)
        elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            for name in _assigned_names(stmt):
                env.pop(name, None)
            # Interpret the body once (post-kill env, result discarded)
            # so observers see every statement with sound bindings.
            _interpret_block(list(stmt.body), dict(env), folder, observer)
            _interpret_block(list(stmt.orelse), dict(env), folder, observer)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    for name in _target_names(item.optional_vars):
                        env.pop(name, None)
            _interpret_block(stmt.body, env, folder, observer)
        elif isinstance(stmt, ast.Try):
            # Handlers may observe any prefix of the body: keep only
            # bindings the body cannot invalidate (assigned nowhere).
            body_env = _interpret_block(stmt.body, dict(env), folder,
                                        observer)
            killed = _assigned_names(stmt)
            for name in killed:
                env.pop(name, None)
            for handler in stmt.handlers:
                _interpret_block(list(handler.body), dict(env), folder,
                                 observer)
            _interpret_block(list(stmt.orelse), dict(body_env), folder,
                             observer)
            _interpret_block(list(stmt.finalbody), dict(env), folder,
                             observer)
            for name, value in body_env.items():
                if name not in killed:
                    env[name] = value
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            continue
        elif isinstance(stmt, (ast.Return, ast.Raise, ast.Break,
                               ast.Continue)):
            break
    return env


def function_env(func: FuncNode, base: Mapping[str, float],
                 params: Mapping[str, float] | None = None,
                 summaries: "SummaryTable | None" = None,
                 observer: Observer | None = None) -> ConstEnv:
    """Constant environment at the end of a function body.

    ``base`` is the module environment; ``params`` binds (a subset of)
    the function's parameters to known values, which is how a caller's
    constant arguments flow one level into a helper. ``observer`` is
    invoked per interpreted statement with the env in force before it —
    the hook checkers use to fold call sites mid-body.
    """
    env: ConstEnv = dict(base)
    defaults = _param_defaults(func, base)
    env.update(defaults)
    if params:
        env.update(params)
    folder = Folder(summaries)
    return _interpret_block(list(func.body), env, folder, observer)


def interpret_block(stmts: Sequence[ast.stmt], base: Mapping[str, float],
                    summaries: "SummaryTable | None" = None,
                    observer: Observer | None = None) -> ConstEnv:
    """Interpret a statement list (module or class body) from ``base``."""
    return _interpret_block(list(stmts), dict(base), Folder(summaries),
                            observer)


def statement_envs(func: FuncNode, base: Mapping[str, float],
                   params: Mapping[str, float] | None = None,
                   summaries: "SummaryTable | None" = None,
                   ) -> dict[int, ConstEnv]:
    """``{id(stmt): env-before}`` for every interpreted statement."""
    snapshots: dict[int, ConstEnv] = {}

    def observe(stmt: ast.stmt, env: Mapping[str, float]) -> None:
        snapshots.setdefault(id(stmt), dict(env))

    function_env(func, base, params, summaries, observer=observe)
    return snapshots


def _param_defaults(func: FuncNode,
                    base: Mapping[str, float]) -> ConstEnv:
    """Foldable default values, bound to their parameter names."""
    args = func.args
    out: ConstEnv = {}
    positional = list(args.posonlyargs) + list(args.args)
    for arg, default in zip(positional[len(positional) - len(args.defaults):],
                            args.defaults):
        value = fold(default, base)
        if value is not None:
            out[arg.arg] = value
    for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
        if kw_default is not None:
            value = fold(kw_default, base)
            if value is not None:
                out[arg.arg] = value
    return out


@dataclass
class FunctionSummary:
    """One function's interprocedural summary."""

    info: FunctionInfo
    #: the single ``return <expr>`` when the function has exactly one
    return_expr: ast.expr | None


class SummaryTable:
    """Per-function summaries plus caller-side argument binding."""

    def __init__(self, table: SymbolTable,
                 module_envs: Mapping[str, Mapping[str, float]]) -> None:
        self.table = table
        self.module_envs = module_envs
        self._summaries: dict[str, FunctionSummary] = {}

    def summary(self, qualname: str) -> FunctionSummary | None:
        cached = self._summaries.get(qualname)
        if cached is not None:
            return cached
        info = self.table.function(qualname)
        if info is None:
            return None
        returns = [node for node in ast.walk(info.node)
                   if isinstance(node, ast.Return) and node.value is not None]
        summary = FunctionSummary(
            info=info,
            return_expr=returns[0].value if len(returns) == 1 else None)
        self._summaries[qualname] = summary
        return summary

    def bind_args(self, call: ast.Call, info: FunctionInfo,
                  env: Mapping[str, float],
                  folder: "Folder | None" = None) -> ConstEnv:
        """Callee param env from a call's foldable actual arguments."""
        folder = folder or Folder()
        params = info.params
        bound: ConstEnv = {}
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred) or i >= len(params):
                continue
            value = folder.fold(arg, env)
            if value is not None:
                bound[params[i]] = value
        for kw in call.keywords:
            if kw.arg is None:
                continue
            value = folder.fold(kw.value, env)
            if value is not None:
                bound[kw.arg] = value
        return bound

    def return_value(self, call: ast.Call, env: Mapping[str, float],
                     folder: "Folder | None" = None) -> float | None:
        """Fold a call to a summarized helper's return value (one level)."""
        qual = self._resolve_simple(call)
        if qual is None:
            return None
        summary = self.summary(qual)
        if summary is None or summary.return_expr is None:
            return None
        info = summary.info
        callee_base = self.module_envs.get(info.module, {})
        params = self.bind_args(call, info, env, folder)
        # One level only: the callee's body folds with plain constants.
        callee_env = function_env(info.node, callee_base, params,
                                  summaries=None)
        return fold(summary.return_expr, callee_env)

    def summary_for_call(self, call: ast.Call) -> FunctionSummary | None:
        """Summary of the (unambiguous, bare-name) callee, or ``None``."""
        qual = self._resolve_simple(call)
        return self.summary(qual) if qual is not None else None

    def _resolve_simple(self, call: ast.Call) -> str | None:
        """Resolve a bare-name call against every scanned module.

        Caller-module context is not threaded through folding, so a bare
        callee name resolves only when it is unambiguous project-wide.
        """
        if not isinstance(call.func, ast.Name):
            return None
        name = call.func.id
        matches = [qual for qual in self.table.functions
                   if qual.endswith(f":{name}")]
        if len(matches) == 1:
            return matches[0]
        return None
