"""Baseline file support: intentional exceptions, committed next to the code.

A baseline entry identifies a finding by ``(rule, path, hash of the
stripped source line)`` plus an allowed count, so renumbering lines (the
common churn) does not invalidate it while any edit to the flagged line
itself does — exactly when a human should re-review the exception.

The default location is ``.etlint-baseline.json`` at the repository root;
``--write-baseline`` regenerates it from the current findings.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = ".etlint-baseline.json"

BaselineKey = tuple[str, str, str]


def line_hash(source_line: str) -> str:
    """Stable digest of one stripped source line."""
    return hashlib.sha256(source_line.strip().encode("utf-8")).hexdigest()[:12]


@dataclass
class Baseline:
    """Allowed finding counts keyed by (rule, path, line hash)."""

    entries: Counter[BaselineKey]

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(entries=Counter())

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; raises ``ValueError`` on a bad document."""
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"baseline {path}: invalid JSON: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"baseline {path}: expected version {BASELINE_VERSION}")
        entries: Counter[BaselineKey] = Counter()
        raw = doc.get("entries", [])
        if not isinstance(raw, list):
            raise ValueError(f"baseline {path}: 'entries' must be a list")
        for item in raw:
            if not isinstance(item, dict):
                raise ValueError(f"baseline {path}: bad entry {item!r}")
            try:
                key = (str(item["rule"]), str(item["path"]),
                       str(item["line_hash"]))
                count = int(item.get("count", 1))
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"baseline {path}: bad entry {item!r}") from exc
            entries[key] += max(1, count)
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: list[tuple[Finding, str]]) -> "Baseline":
        """Build a baseline that exactly covers ``(finding, source line)`` pairs."""
        entries: Counter[BaselineKey] = Counter()
        for finding, source_line in findings:
            entries[(finding.rule_id, finding.path,
                     line_hash(source_line))] += 1
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        """Write the baseline as stable, diff-friendly JSON."""
        items = [
            {"rule": rule, "path": file_path, "line_hash": digest,
             "count": count}
            for (rule, file_path, digest), count in sorted(
                self.entries.items())
        ]
        doc = {"version": BASELINE_VERSION, "entries": items}
        path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")

    def filter(self, findings: list[tuple[Finding, str]]
               ) -> tuple[list[Finding], int]:
        """Drop baselined findings; returns (surviving, suppressed count).

        Each baseline entry absorbs up to ``count`` findings with its key;
        extra occurrences on the same line still fail, so a baselined file
        cannot silently accumulate more violations of the same kind.
        """
        budget = Counter(self.entries)
        survivors: list[Finding] = []
        suppressed = 0
        for finding, source_line in findings:
            key: BaselineKey = (finding.rule_id, finding.path,
                                line_hash(source_line))
            if budget[key] > 0:
                budget[key] -= 1
                suppressed += 1
            else:
                survivors.append(finding)
        return survivors, suppressed
