"""Pass 7 — flight-recorder event-protocol closure (ET701/ET702/ET703).

The static counterpart of ``tools/check_trace.py``'s lifecycle validator:
every request the recorder ``admit``-s must reach a terminal
``complete``/``reject`` event (``rebook`` re-opens it on a surviving
replica). ``check_trace.py`` proves this per run; this pass proves the
*code* cannot do otherwise:

- **ET701** — a class (or module) that emits ``admit`` but whose
  call-graph closure never emits a terminal event can only produce open
  lifecycles;
- **ET702** — path-sensitive: inside an admitting function, every path
  from the ``admit`` emit to a function exit (normal or exceptional)
  must either emit a terminal event or *hand the request off* — enqueue
  it (``.put(...)`` / an ``enqueue`` emit) or register its future — to
  the machinery that guarantees the terminal. The canonical violation is
  raising after ``admit`` without the ``reject`` emit the handler owes;
- **ET703** — a function emitting ``worker_death`` must re-book or
  reject the dead replica's orphans (the pool's recovery contract).

``if self.events.enabled:`` guards are assumed true (the recorder being
off trivially satisfies the protocol), which keeps correlated guards
from manufacturing impossible open paths.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from repro.analysis.callgraph import FuncNode
from repro.analysis.findings import Finding, make_finding
from repro.analysis.protocol import ProtocolChecker
from repro.analysis.resolve import callee_name

if TYPE_CHECKING:
    from repro.analysis.runner import AnalysisContext, SourceFile

TERMINAL_KINDS = frozenset({"complete", "reject", "rebook"})
#: emits that transfer the open lifecycle to downstream machinery
HANDOFF_KINDS = frozenset({"enqueue"})

#: "clean" | ("open", admit line) | "closed"
State = str | tuple[str, int]


def emit_kind(call: ast.Call) -> str | None:
    """The literal event kind of an ``<recorder>.emit("kind", ...)`` call."""
    if not (isinstance(call.func, ast.Attribute)
            and call.func.attr == "emit" and call.args):
        return None
    first = call.args[0]
    if isinstance(first, ast.Constant) and isinstance(first.value, str):
        return first.value
    return None


def _own_body_walk(func: FuncNode) -> list[ast.AST]:
    """Nodes of a function excluding nested function/class bodies."""
    out: list[ast.AST] = []
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return out


def _emit_kinds(node: ast.AST) -> dict[str, int]:
    """Event kinds emitted anywhere under ``node`` -> first line."""
    kinds: dict[str, int] = {}
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            kind = emit_kind(sub)
            if kind is not None and kind not in kinds:
                kinds[kind] = sub.lineno
    return kinds


def _branch_filter(test: ast.expr) -> bool | None:
    """Assume recorder/tracer ``.enabled`` guards hold (worst case on)."""
    if isinstance(test, ast.Attribute) and test.attr == "enabled":
        return True
    return None


class _EventPath:
    """ET702 transfer function for one admitting function."""

    def __init__(self, sf: "SourceFile") -> None:
        self.sf = sf
        self.findings: dict[int, Finding] = {}

    def step(self, state: State, node: ast.AST) -> State:
        calls = sorted(
            (c for c in ast.walk(node) if isinstance(c, ast.Call)),
            key=lambda c: (c.lineno, c.col_offset))
        for call in calls:
            kind = emit_kind(call)
            if kind == "admit" and state == "clean":
                state = ("open", call.lineno)
            elif kind in TERMINAL_KINDS or kind in HANDOFF_KINDS:
                if isinstance(state, tuple):
                    state = "closed"
            elif kind is None and callee_name(call) == "put":
                # the request entered the tracked queue: the consumer
                # side owes (and emits) the terminal event
                if isinstance(state, tuple):
                    state = "closed"
        if isinstance(node, ast.Assign) and isinstance(state, tuple):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    # futures-table registration: terminal emitted at
                    # resolution time by whoever pops the future
                    state = "closed"
        return state

    def may_raise(self, stmt: ast.stmt) -> bool:
        return any(callee_name(c) in ("put", "admit")
                   for c in ast.walk(stmt) if isinstance(c, ast.Call))

    def report_open(self, state: State, end_node: ast.AST,
                    exceptional: bool) -> None:
        if not isinstance(state, tuple):
            return
        admit_line = state[1]
        if admit_line in self.findings:
            return
        how = ("an exception escapes" if exceptional
               else "a return path exits")
        end_line = getattr(end_node, "lineno", admit_line)
        self.findings[admit_line] = make_finding(
            "ET702", self.sf.display, admit_line, 0,
            f"admit emitted here but {how} near line {end_line} without a "
            f"terminal complete/reject/rebook emit or a queue/futures "
            f"hand-off")


def _check_function_paths(sf: "SourceFile", func: FuncNode) -> list[Finding]:
    walker = _EventPath(sf)
    checker = ProtocolChecker(step=walker.step, may_raise=walker.may_raise,
                              branch_filter=_branch_filter)
    for end in checker.run(func, "clean"):
        walker.report_open(end.state, end.node, end.exceptional)
    return list(walker.findings.values())


def _closure_kinds(quals: list[str],
                   ctx: "AnalysisContext") -> dict[str, int]:
    """Emit kinds across the call-graph closure of ``quals``."""
    kinds: dict[str, int] = {}
    for qual in ctx.callgraph.reachable(quals):
        info = ctx.symbols.function(qual)
        if info is None:
            continue
        for kind, line in _emit_kinds(info.node).items():
            kinds.setdefault(kind, line)
    return kinds


def check_event_protocol(sf: "SourceFile",
                         ctx: "AnalysisContext") -> list[Finding]:
    """Run the event-protocol checks over one file."""
    findings: list[Finding] = []

    # ET702: path closure inside every admitting function (incl. nested).
    for func in (n for n in ast.walk(sf.tree)
                 if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))):
        own = _own_body_walk(func)
        admits = [n for n in own if isinstance(n, ast.Call)
                  and emit_kind(n) == "admit"]
        if admits:
            findings.extend(_check_function_paths(sf, func))

    # ET701: class-level closure — an admitting class must be able to
    # emit a terminal event somewhere in its call-graph closure.
    for stmt in sf.tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        direct = _emit_kinds(stmt)
        if "admit" not in direct:
            continue
        quals = [q for q in (ctx.symbols.method_qual(stmt.name, m)
                             for m in ctx.symbols.classes[stmt.name].methods)
                 if q is not None] if stmt.name in ctx.symbols.classes else []
        closure = dict(direct)
        closure.update(_closure_kinds(quals, ctx))
        if not (TERMINAL_KINDS & set(closure)):
            findings.append(make_finding(
                "ET701", sf.display, direct["admit"], 0,
                f"class {stmt.name} emits admit but no terminal "
                f"complete/reject/rebook is reachable from any of its "
                f"methods; every admitted rid's lifecycle stays open"))

    # ET703: worker_death must be followed by re-booking (or rejection).
    for func in (n for n in ast.walk(sf.tree)
                 if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))):
        own = _emit_kinds_own(func)
        if "worker_death" not in own:
            continue
        qual = _qual_of(sf, ctx, func)
        closure = dict(own)
        if qual is not None:
            closure.update(_closure_kinds([qual], ctx))
        if "rebook" not in closure and "reject" not in closure:
            findings.append(make_finding(
                "ET703", sf.display, own["worker_death"], 0,
                "worker_death emitted without re-booking (rebook) or "
                "rejecting the dead replica's orphaned requests"))
    return findings


def _emit_kinds_own(func: FuncNode) -> dict[str, int]:
    kinds: dict[str, int] = {}
    for node in _own_body_walk(func):
        if isinstance(node, ast.Call):
            kind = emit_kind(node)
            if kind is not None and kind not in kinds:
                kinds[kind] = node.lineno
    return kinds


def _qual_of(sf: "SourceFile", ctx: "AnalysisContext",
             func: FuncNode) -> str | None:
    """Qualname of a top-level function/method node, if indexed."""
    for qual, info in ctx.symbols.functions.items():
        if info.node is func and info.module == sf.module:
            return qual
    return None
