"""Pass 5 — process-safety of the shared-memory weight plumbing.

The replica pool's crash-safety story (DESIGN.md §11) rests on one
module owning every shared-memory segment:
:mod:`repro.runtime.shm` centralises creation, attachment,
resource-tracker workarounds (bpo-38119) and the close/unlink
lifecycle, so a worker death can never leak a segment that nothing
knows how to reclaim. Any other module importing
``multiprocessing.shared_memory`` (or reaching it through a
``multiprocessing`` alias) bypasses that ownership and re-opens the
leak — ET501.

Standalone files (fixtures, scripts) are in scope like every other
pass; only the weight-store module itself is exempt.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from repro.analysis.findings import Finding, make_finding

if TYPE_CHECKING:
    from repro.analysis.runner import AnalysisContext, SourceFile

#: The one module allowed to touch multiprocessing.shared_memory.
SHM_OWNER_MODULE = "repro.runtime.shm"

_SHM_MODULE = "multiprocessing.shared_memory"


def _owner_exempt(module: str) -> bool:
    return module == SHM_OWNER_MODULE


def _import_findings(sf: "SourceFile") -> list[Finding]:
    """ET501 findings for import statements naming the shm module."""
    findings: list[Finding] = []
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == _SHM_MODULE \
                        or alias.name.startswith(_SHM_MODULE + "."):
                    findings.append(make_finding(
                        "ET501", sf.display, node.lineno, node.col_offset,
                        f"direct import of {alias.name} outside "
                        f"{SHM_OWNER_MODULE}"))
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == _SHM_MODULE:
                findings.append(make_finding(
                    "ET501", sf.display, node.lineno, node.col_offset,
                    f"direct import from {_SHM_MODULE} outside "
                    f"{SHM_OWNER_MODULE}"))
            elif node.module == "multiprocessing":
                for alias in node.names:
                    if alias.name == "shared_memory":
                        findings.append(make_finding(
                            "ET501", sf.display, node.lineno,
                            node.col_offset,
                            f"direct import of {_SHM_MODULE} outside "
                            f"{SHM_OWNER_MODULE}"))
    return findings


def _mp_aliases(tree: ast.Module) -> set[str]:
    """Local names bound to the top-level ``multiprocessing`` module."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "multiprocessing":
                    names.add(alias.asname or "multiprocessing")
                elif alias.name.startswith("multiprocessing.") \
                        and alias.asname is None:
                    # `import multiprocessing.shared_memory` also binds
                    # the top-level name (handled by _import_findings).
                    names.add("multiprocessing")
    return names


def _attribute_findings(sf: "SourceFile") -> list[Finding]:
    """ET501 findings for ``mp.shared_memory`` attribute chains."""
    findings: list[Finding] = []
    mp_names = _mp_aliases(sf.tree)
    if not mp_names:
        return findings
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.Attribute) and node.attr == "shared_memory" \
                and isinstance(node.value, ast.Name) \
                and node.value.id in mp_names:
            findings.append(make_finding(
                "ET501", sf.display, node.lineno, node.col_offset,
                f"use of {node.value.id}.shared_memory outside "
                f"{SHM_OWNER_MODULE}"))
    return findings


def check_process_safety(sf: "SourceFile",
                         ctx: "AnalysisContext") -> list[Finding]:
    """Run the shared-memory ownership check over one file."""
    if _owner_exempt(sf.module):
        return []
    return _import_findings(sf) + _attribute_findings(sf)
