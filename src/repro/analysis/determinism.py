"""Pass 3 — determinism of the byte-identical trace/artifact paths.

PR 2's contract is that a seeded run produces byte-identical traces and
metrics artifacts. Three things silently break it:

- **wall-clock reads** (``time.time()``, ``time.monotonic()``,
  ``datetime.now()``, …) anywhere virtual time should flow — ET301. The
  thread-backed :class:`~repro.serving.server.AsyncServer` is the one
  designated timing boundary and carries inline suppressions.
- **unseeded randomness** (``np.random.default_rng()`` with no seed, the
  legacy ``np.random.*`` module-level functions, stdlib ``random.*``) —
  ET302, enforced across the whole package: any draw not derived from an
  explicit seed makes artifacts unreproducible.
- **set iteration into output** — ET303: set order varies with
  ``PYTHONHASHSEED``, so a ``for``/``join``/``list`` over a set must wrap
  it in ``sorted(...)``.

ET301/ET303 apply to the hot-path packages (``runtime``, ``obs``,
``serving``, ``gpu``, ``eval``); ET302 applies everywhere.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from repro.analysis.findings import Finding, make_finding
from repro.analysis.resolve import callee_name

if TYPE_CHECKING:
    from repro.analysis.runner import AnalysisContext, SourceFile

#: repro.<subpackage> prefixes whose output feeds the trace guarantee.
HOT_PATH_SCOPES = ("runtime", "obs", "serving", "gpu", "eval")

_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "datetime.datetime.now",
    "datetime.datetime.utcnow", "datetime.datetime.today",
    "datetime.date.today",
    # Formatting/conversion reads that default to "now" / local clock
    # state — these leak wall time into artifacts just as surely as a
    # direct time.time() (the flight recorder's byte-identity depends on
    # no obs module reaching any of them).
    "time.localtime", "time.gmtime", "time.strftime", "time.ctime",
    "time.asctime", "datetime.datetime.fromtimestamp",
    "datetime.date.fromtimestamp",
})

_NP_LEGACY_RNG = frozenset({
    "rand", "randn", "random", "random_sample", "ranf", "randint",
    "random_integers", "choice", "shuffle", "permutation", "normal",
    "standard_normal", "uniform", "poisson", "exponential", "binomial",
    "seed", "get_state", "set_state",
})

_STDLIB_RNG = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "seed", "getrandbits", "randbytes",
})


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted import path they are bound to."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                aliases[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
    return aliases


def _resolved_path(call: ast.Call, aliases: dict[str, str]) -> str | None:
    """Dotted callee path with its leading alias expanded."""
    parts: list[str] = []
    node: ast.expr = call.func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    head = aliases.get(parts[0])
    if head is not None:
        parts[0] = head
    return ".".join(parts)


def in_hot_path(module: str) -> bool:
    """Whether ET301/ET303 apply to this module.

    Standalone files (test fixtures, scripts outside the package) are
    always in scope; ``repro.*`` modules only when under a hot-path
    subpackage.
    """
    if not module.startswith("repro."):
        return True
    parts = module.split(".")
    return len(parts) > 1 and parts[1] in HOT_PATH_SCOPES


def check_determinism(sf: "SourceFile",
                      ctx: "AnalysisContext") -> list[Finding]:
    """Run the determinism checks over one file."""
    findings: list[Finding] = []
    aliases = _import_aliases(sf.tree)
    hot = in_hot_path(sf.module)
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.Call):
            path = _resolved_path(node, aliases)
            if path is not None:
                if hot and path in _WALL_CLOCK:
                    findings.append(make_finding(
                        "ET301", sf.display, node.lineno, node.col_offset,
                        f"wall-clock read {path}() in a deterministic hot "
                        f"path"))
                findings.extend(_check_rng(sf, node, path))
        if hot:
            findings.extend(_check_set_iteration(sf, node))
    return findings


def _check_rng(sf: "SourceFile", node: ast.Call, path: str) -> list[Finding]:
    message: str | None = None
    if path in ("numpy.random.default_rng", "np.random.default_rng") \
            and not node.args and not node.keywords:
        message = "np.random.default_rng() without a seed"
    elif path in ("numpy.random.RandomState", "np.random.RandomState") \
            and not node.args and not node.keywords:
        message = "np.random.RandomState() without a seed"
    elif path.startswith(("numpy.random.", "np.random.")) \
            and path.rsplit(".", 1)[1] in _NP_LEGACY_RNG:
        message = (f"legacy global-state call {path}(); draws depend on "
                   f"hidden module state")
    elif path.startswith("random.") \
            and path.rsplit(".", 1)[1] in _STDLIB_RNG:
        message = (f"stdlib {path}() uses the hidden global generator")
    if message is None:
        return []
    return [make_finding("ET302", sf.display, node.lineno, node.col_offset,
                         message)]


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and callee_name(node) in ("set", "frozenset"))


def _check_set_iteration(sf: "SourceFile", node: ast.AST) -> list[Finding]:
    sites: list[tuple[ast.expr, str]] = []
    if isinstance(node, ast.For):
        sites.append((node.iter, "for-loop"))
    elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                           ast.GeneratorExp)):
        for gen in node.generators:
            sites.append((gen.iter, "comprehension"))
    elif isinstance(node, ast.Call):
        func = node.func
        is_join = isinstance(func, ast.Attribute) and func.attr == "join"
        is_seq = isinstance(func, ast.Name) and func.id in ("list", "tuple")
        if (is_join or is_seq) and node.args \
                and not isinstance(node.args[0], ast.Starred):
            label = "join" if is_join else "sequence conversion"
            sites.append((node.args[0], label))
    return [
        make_finding(
            "ET303", sf.display, expr.lineno, expr.col_offset,
            f"{label} iterates a set directly; order varies with "
            f"PYTHONHASHSEED")
        for expr, label in sites if _is_set_expr(expr)
    ]
