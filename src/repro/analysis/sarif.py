"""SARIF 2.1.0 output for code-scanning integration.

``python -m repro.analysis --format=sarif`` emits one run with the full
rule catalogue in the tool driver (so viewers render invariants and
hints without the repo checked out) and one result per finding, anchored
by repo-relative URI. The document targets the published 2.1.0 schema
(``$schema`` points at the canonical schemastore copy);
:func:`validate_minimal` structurally checks the invariants that schema
enforces so tests stay offline.
"""

from __future__ import annotations

import json
from typing import Any

from repro.analysis.findings import RULES, Finding, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _rule_descriptor(rule_id: str) -> dict[str, Any]:
    rule = RULES[rule_id]
    return {
        "id": rule.rule_id,
        "name": rule.name,
        "shortDescription": {"text": rule.summary},
        "fullDescription": {"text": rule.invariant},
        "help": {"text": f"{rule.hint} (traces to: {rule.paper_ref})"},
        "defaultConfiguration": {"level": _LEVELS[rule.severity]},
    }


def sarif_document(findings: list[Finding]) -> dict[str, Any]:
    """The findings as a single-run SARIF 2.1.0 log object."""
    rule_ids = sorted(RULES)
    index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    results = [
        {
            "ruleId": f.rule_id,
            "ruleIndex": index[f.rule_id],
            "level": _LEVELS[f.severity],
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(1, f.line),
                        "startColumn": f.col + 1,
                    },
                },
            }],
        }
        for f in findings
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "etlint",
                    "version": "2.0.0",
                    "rules": [_rule_descriptor(r) for r in rule_ids],
                },
            },
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///./"}},
            "results": results,
        }],
    }


def sarif_json(findings: list[Finding]) -> str:
    """Serialized SARIF log, stable key order."""
    return json.dumps(sarif_document(findings), indent=2, sort_keys=False)


def validate_minimal(doc: dict[str, Any]) -> list[str]:
    """Structural SARIF 2.1.0 checks; returns a list of violations.

    Covers the schema constraints the emitter could plausibly break:
    required top-level members, run/tool shape, result rule references
    resolving into the driver's rule array, and 1-based regions.
    """
    problems: list[str] = []
    if doc.get("version") != SARIF_VERSION:
        problems.append("version must be '2.1.0'")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return problems + ["runs must be a non-empty array"]
    for ri, run in enumerate(runs):
        driver = run.get("tool", {}).get("driver", {})
        if not driver.get("name"):
            problems.append(f"runs[{ri}].tool.driver.name missing")
        rules = driver.get("rules", [])
        ids = [r.get("id") for r in rules]
        if len(ids) != len(set(ids)):
            problems.append(f"runs[{ri}] duplicate rule ids")
        for si, result in enumerate(run.get("results", [])):
            where = f"runs[{ri}].results[{si}]"
            if not isinstance(result.get("message", {}).get("text"), str):
                problems.append(f"{where}.message.text missing")
            if result.get("level") not in ("error", "warning", "note",
                                           "none"):
                problems.append(f"{where}.level invalid")
            idx = result.get("ruleIndex")
            if not isinstance(idx, int) or not 0 <= idx < len(rules) \
                    or ids[idx] != result.get("ruleId"):
                problems.append(f"{where} ruleIndex/ruleId mismatch")
            for loc in result.get("locations", []):
                region = loc.get("physicalLocation", {}).get("region", {})
                if region.get("startLine", 1) < 1 or \
                        region.get("startColumn", 1) < 1:
                    problems.append(f"{where} region must be 1-based")
    return problems
