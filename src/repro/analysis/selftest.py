"""Analyzer selftest: prove the deep passes still trip on known-bad code.

A static analyzer's worst failure mode is silent: a refactor makes a
pass stop matching and CI goes green forever after. ``--selftest``
guards against that by synthesizing a fixture tree in a temp directory
containing one certain ET601 deadlock (two classes acquiring each
other's locks in opposite orders through resolved calls) and one certain
ET502 leak (a ``SharedMemory`` mapping whose close is skipped on an
exceptional branch), running the full pipeline over it, and failing
unless **both** passes report. CI runs this before the real lint so a
lobotomized analyzer fails the build instead of passing it.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

DEADLOCK_FIXTURE = '''\
"""Synthetic AB/BA lock-order cycle (must trip ET601).

One direction is a nested ``with``; the other goes through a resolved
call, so the selftest exercises the call graph and the transitive
acquisition closure, not just the syntactic walker.
"""
import threading

JOURNAL_LOCK = threading.Lock()
LEDGER_LOCK = threading.Lock()


def post():
    with JOURNAL_LOCK:
        with LEDGER_LOCK:
            pass


def _settle():
    with JOURNAL_LOCK:
        pass


def reconcile():
    with LEDGER_LOCK:
        _settle()
'''

LEAK_FIXTURE = '''\
"""Synthetic close-skipped-on-branch shm leak (must trip ET502)."""
from multiprocessing import shared_memory


def peek(name: str) -> int:
    seg = shared_memory.SharedMemory(name=name)
    first = seg.buf[0]
    if first == 0:
        return -1
    seg.close()
    return first
'''


def run_selftest() -> list[str]:
    """Returns a list of failures (empty when the analyzer is healthy)."""
    from repro.analysis.runner import run_analysis

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="etlint-selftest-") as tmp:
        root = Path(tmp)
        (root / "deadlock_case.py").write_text(DEADLOCK_FIXTURE,
                                               encoding="utf-8")
        (root / "leak_case.py").write_text(LEAK_FIXTURE, encoding="utf-8")
        report = run_analysis([root], root=root)
        rules = {f.rule_id for f in report.findings}
        if "ET601" not in rules:
            failures.append(
                "ET601 pass failed to report the synthetic Ledger/Journal "
                "lock-order cycle")
        if "ET502" not in rules:
            failures.append(
                "ET502 pass failed to report the synthetic close-skipped "
                "SharedMemory leak")
        if report.parse_errors:
            failures.extend(f"selftest fixture parse error: {err}"
                            for err in report.parse_errors)
    return failures
