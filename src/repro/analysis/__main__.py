"""Command-line front end: ``python -m repro.analysis [paths...]``.

Exit codes: 0 — clean; 1 — non-baselined findings (or parse errors, or
unused suppressions under ``--strict-suppressions``, or a failed
``--selftest``); 2 — usage error (bad path, unknown rule, invalid
baseline file).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.cache import FindingsCache
from repro.analysis.findings import RULES, Finding, Severity
from repro.analysis.runner import findings_with_lines, run_analysis

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="etlint: static analysis of the E.T. reproduction's "
                    "kernel-launch, FP16-safety, determinism, thread-, "
                    "process-, deadlock-, and event-protocol contracts.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)")
    parser.add_argument(
        "--format", choices=("text", "github", "json", "sarif"),
        default="text",
        help="finding output format; 'github' emits workflow-command "
             "annotations that overlay PR diffs, 'sarif' a SARIF 2.1.0 "
             "log for code-scanning upload")
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help=f"baseline file of intentional exceptions (default: "
             f"{DEFAULT_BASELINE_NAME} at the repo root when present)")
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file, report everything")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0")
    parser.add_argument(
        "--rules", metavar="IDS", default=None,
        help="comma-separated rule ids or prefixes to run "
             "(e.g. ET3,ET401)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule with its invariant and exit")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the .etlint-cache findings cache")
    parser.add_argument(
        "--strict-suppressions", action="store_true",
        help="fail (exit 1) when any ET001 unused-suppression warning "
             "is reported")
    parser.add_argument(
        "--selftest", action="store_true",
        help="verify the deep passes trip on synthetic known-bad "
             "fixtures (deadlock + shm leak), then exit")
    return parser


def _list_rules() -> str:
    lines = []
    for rule in sorted(RULES.values(), key=lambda r: r.rule_id):
        lines.append(f"{rule.rule_id} [{rule.severity.value}] {rule.name}")
        lines.append(f"    {rule.summary}")
        lines.append(f"    invariant: {rule.invariant}")
        lines.append(f"    traces to: {rule.paper_ref}")
    return "\n".join(lines)


def _json_payload(findings: list[Finding]) -> str:
    import json

    return json.dumps(
        [
            {"rule": f.rule_id, "path": f.path, "line": f.line,
             "col": f.col, "severity": f.severity.value,
             "message": f.message, "hint": f.hint}
            for f in findings
        ],
        indent=2,
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return EXIT_CLEAN

    if args.selftest:
        from repro.analysis.selftest import run_selftest

        failures = run_selftest()
        for failure in failures:
            print(f"selftest FAILED: {failure}", file=sys.stderr)
        if not failures:
            print("etlint selftest: synthetic deadlock and shm-leak "
                  "fixtures both detected", file=sys.stderr)
        return EXIT_FINDINGS if failures else EXIT_CLEAN

    paths = [Path(p) for p in args.paths]
    for path in paths:
        if not path.exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return EXIT_USAGE

    rule_filter = None
    if args.rules:
        prefixes = tuple(
            token.strip().upper()
            for token in args.rules.split(",") if token.strip())
        unknown = [p for p in prefixes
                   if not any(rid.startswith(p) for rid in RULES)]
        if unknown:
            print(f"error: unknown rule id(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return EXIT_USAGE
        rule_filter = lambda rid: rid.startswith(prefixes)  # noqa: E731

    root = Path.cwd()
    baseline_path = (Path(args.baseline) if args.baseline
                     else root / DEFAULT_BASELINE_NAME)

    if args.write_baseline:
        raw = findings_with_lines(paths, root)
        if rule_filter is not None:
            raw = [pair for pair in raw if rule_filter(pair[0].rule_id)]
        Baseline.from_findings(raw).save(baseline_path)
        print(f"wrote {len(raw)} baseline entr"
              f"{'y' if len(raw) == 1 else 'ies'} to {baseline_path}")
        return EXIT_CLEAN

    baseline = None
    if not args.no_baseline and baseline_path.exists():
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE

    cache = None if args.no_cache else FindingsCache(root)
    report = run_analysis(paths, root, baseline=baseline,
                          rule_filter=rule_filter, cache=cache)
    for err in report.parse_errors:
        print(f"error: cannot parse {err}", file=sys.stderr)

    if args.format == "json":
        print(_json_payload(report.findings))
    elif args.format == "sarif":
        from repro.analysis.sarif import sarif_json

        print(sarif_json(report.findings))
    else:
        for finding in report.findings:
            print(finding.format_github() if args.format == "github"
                  else finding.format_text())

    if args.format not in ("json", "sarif"):
        suppressed = report.suppressed_inline + report.suppressed_baseline
        summary = (f"etlint: {len(report.findings)} finding"
                   f"{'' if len(report.findings) == 1 else 's'} across "
                   f"{report.files_scanned} files")
        if suppressed:
            summary += (f" ({report.suppressed_inline} inline-suppressed, "
                        f"{report.suppressed_baseline} baselined)")
        if report.from_cache:
            summary += f" [{report.from_cache} from cache]"
        print(summary, file=sys.stderr)

    errors = [f for f in report.findings if f.severity is not Severity.WARNING]
    warnings_fail = args.strict_suppressions and report.unused_suppressions
    if errors or warnings_fail or report.parse_errors:
        return EXIT_FINDINGS
    return EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
