"""`etlint` — repo-specific static analysis for the E.T. reproduction.

Five AST passes enforce the invariants the engine's correctness rests on,
at analysis time instead of at runtime:

1. **kernel-contract** (ET1xx): Equation 6 shared-memory budgets and
   tensor-core tile geometry, checked against every known
   :class:`~repro.gpu.device.DeviceSpec` at statically resolvable
   construction sites.
2. **fp16-safety** (ET2xx): the Section 3.3 scaling-reorder rule — pure
   FP16 ``Q·Kᵀ`` must pre-scale or widen its accumulator.
3. **determinism** (ET3xx): no wall clocks, unseeded RNG, or unsorted set
   iteration in the paths that back the byte-identical-trace guarantee.
4. **thread-safety** (ET4xx): ``self.*`` writes and lock-less-collaborator
   mutations in lock-owning serving classes must hold the class's lock.
5. **process-safety** (ET5xx): ``multiprocessing.shared_memory`` may only
   be touched by the pool's weight-store module
   (:mod:`repro.runtime.shm`), which owns the segment lifecycle.

Run ``python -m repro.analysis`` (or ``tools/etlint.py``); see
``--list-rules`` for the rule catalogue and DESIGN.md §9 for the mapping
from rules to paper sections.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.findings import RULES, Finding, Rule, Severity
from repro.analysis.runner import (
    AnalysisContext,
    AnalysisReport,
    SourceFile,
    run_analysis,
)

__all__ = [
    "AnalysisContext",
    "AnalysisReport",
    "Baseline",
    "Finding",
    "RULES",
    "Rule",
    "Severity",
    "SourceFile",
    "run_analysis",
]
