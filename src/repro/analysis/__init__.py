"""`etlint` — repo-specific static analysis for the E.T. reproduction.

Eight AST passes enforce the invariants the engine's correctness rests on,
at analysis time instead of at runtime:

1. **kernel-contract** (ET1xx): Equation 6 shared-memory budgets and
   tensor-core tile geometry, checked against every known
   :class:`~repro.gpu.device.DeviceSpec` — interprocedurally, through
   local constant chains and helper functions.
2. **fp16-safety** (ET2xx): the Section 3.3 scaling-reorder rule — pure
   FP16 ``Q·Kᵀ`` must pre-scale or widen its accumulator; "pre-scaled"
   is tracked flow-sensitively through locals and one-level helpers.
3. **determinism** (ET3xx): no wall clocks, unseeded RNG, or unsorted set
   iteration in the paths that back the byte-identical-trace guarantee.
4. **thread-safety** (ET4xx): ``self.*`` writes and lock-less-collaborator
   mutations in lock-owning serving classes must hold the class's lock.
5. **process-safety** (ET501): ``multiprocessing.shared_memory`` may only
   be touched by the pool's weight-store module
   (:mod:`repro.runtime.shm`), which owns the segment lifecycle.
6. **shm-lifecycle** (ET502–ET504): every raw segment acquisition is
   walked path-sensitively through created/attached → used → closed →
   unlinked — leaks on branches, use-after-close, double-unlink.
7. **lock-order** (ET6xx): a project-wide lock acquisition-order graph;
   cycles (ET601, with a ``file:line`` witness per edge) and
   non-reentrant re-acquisition through the call graph (ET602).
8. **event-protocol** (ET7xx): every ``admit`` event must reach a
   terminal ``complete``/``reject``/``rebook`` or an explicit hand-off
   on every path, including the worker-death re-booking contract.

The deep passes share a substrate: :mod:`repro.analysis.callgraph`
(symbol table + resolved call graph), :mod:`repro.analysis.dataflow`
(constant propagation + one-level interprocedural summaries), and
:mod:`repro.analysis.protocol` (a generic protocol-state-machine
walker). ET001 warns on stale ``# etlint: disable=`` comments.

Run ``python -m repro.analysis`` (or ``tools/etlint.py``); see
``--list-rules`` for the rule catalogue and DESIGN.md §9/§13 for the
mapping from rules to paper sections.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.findings import RULES, Finding, Rule, Severity
from repro.analysis.runner import (
    AnalysisContext,
    AnalysisReport,
    SourceFile,
    run_analysis,
)

__all__ = [
    "AnalysisContext",
    "AnalysisReport",
    "Baseline",
    "Finding",
    "RULES",
    "Rule",
    "Severity",
    "SourceFile",
    "run_analysis",
]
