"""Generic protocol-state-machine checker over function bodies.

The shm-lifecycle (ET5xx v2) and event-protocol (ET7xx) passes both ask
the same question: *does every path through this function keep a small
state machine in a legal state?* This module provides the shared path
walker so each pass only supplies its transfer function.

Semantics, chosen to stay useful on the real tree without path
explosion:

- a **frontier** (set of abstract states) flows through the statement
  list; ``If`` forks it, sequencing joins it;
- loops run their body **zero or one** time — enough to observe any
  protocol op the body contains without iterating to a fixpoint;
- a statement for which ``may_raise`` holds forks an **exceptional**
  path from the state *before* the statement's effect. Inside a
  ``try`` with handlers, those pre-states become the handler entry
  frontier and the exception is assumed caught; outside any handler,
  the pre-state is reported as an exceptional function exit;
- ``finally`` blocks run on every path out of their ``try``, including
  the exceptional ones being propagated outward;
- ``branch_filter`` lets a pass assume a condition's truth value (e.g.
  treat ``self.events.enabled`` as always true) so correlated guards do
  not manufacture impossible paths;
- the frontier is deduplicated and capped, so the walk is linear in
  practice and never explodes.

States must be treated as immutable: ``step`` receives a state and
returns the successor (or a list of successors to fork).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Sequence

from repro.analysis.callgraph import FuncNode

State = Hashable
StepFn = Callable[[State, ast.AST], "State | list[State]"]
MayRaiseFn = Callable[[ast.stmt], bool]
BranchFn = Callable[[ast.expr], "bool | None"]


@dataclass(frozen=True)
class PathEnd:
    """One way the walked function can terminate."""

    state: State
    node: ast.AST
    #: terminated by an (assumed-uncaught) exception or explicit raise
    exceptional: bool


@dataclass
class _Ctx:
    outcomes: list[PathEnd] = field(default_factory=list)
    #: per enclosing ``try``: collected pre-raise states for its handlers
    try_stack: list[list[State]] = field(default_factory=list)
    #: per enclosing loop: states that break/continue out of the body
    loop_stack: list[list[State]] = field(default_factory=list)


def _dedupe(states: Sequence[State], cap: int) -> list[State]:
    seen: set[str] = set()
    out: list[State] = []
    for state in states:
        key = repr(state)
        if key in seen:
            continue
        seen.add(key)
        out.append(state)
        if len(out) >= cap:
            break
    return out


class ProtocolChecker:
    """Walk a function body, threading pass-defined states through it."""

    def __init__(self, step: StepFn,
                 may_raise: MayRaiseFn | None = None,
                 branch_filter: BranchFn | None = None,
                 max_states: int = 64) -> None:
        self.step = step
        self.may_raise = may_raise or (lambda stmt: False)
        self.branch_filter = branch_filter or (lambda test: None)
        self.max_states = max_states

    def run(self, func: FuncNode, initial: State) -> list[PathEnd]:
        """Every path end (normal and exceptional) from ``initial``."""
        ctx = _Ctx()
        frontier = self._walk_block(list(func.body), [initial], ctx)
        for state in frontier:
            ctx.outcomes.append(
                PathEnd(state=state, node=func, exceptional=False))
        return ctx.outcomes

    # -- plumbing ---------------------------------------------------------

    def _apply(self, frontier: list[State], node: ast.AST) -> list[State]:
        out: list[State] = []
        for state in frontier:
            result = self.step(state, node)
            if isinstance(result, list):
                out.extend(result)
            else:
                out.append(result)
        return _dedupe(out, self.max_states)

    def _escape(self, frontier: list[State], node: ast.AST,
                ctx: _Ctx) -> None:
        """Route pre-raise states to the nearest handler or out of the
        function."""
        if ctx.try_stack:
            ctx.try_stack[-1].extend(frontier)
            return
        for state in frontier:
            ctx.outcomes.append(
                PathEnd(state=state, node=node, exceptional=True))

    def _walk_block(self, stmts: list[ast.stmt], frontier: list[State],
                    ctx: _Ctx) -> list[State]:
        for stmt in stmts:
            if not frontier:
                return []
            frontier = self._walk_stmt(stmt, frontier, ctx)
        return _dedupe(frontier, self.max_states)

    def _walk_stmt(self, stmt: ast.stmt, frontier: list[State],
                   ctx: _Ctx) -> list[State]:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign,
                             ast.Expr, ast.Assert, ast.Delete)):
            if self.may_raise(stmt):
                self._escape(frontier, stmt, ctx)
            return self._apply(frontier, stmt)
        if isinstance(stmt, ast.Return):
            done = self._apply(frontier, stmt)
            for state in done:
                ctx.outcomes.append(
                    PathEnd(state=state, node=stmt, exceptional=False))
            return []
        if isinstance(stmt, ast.Raise):
            done = self._apply(frontier, stmt)
            if ctx.try_stack:
                ctx.try_stack[-1].extend(done)
            else:
                for state in done:
                    ctx.outcomes.append(
                        PathEnd(state=state, node=stmt, exceptional=True))
            return []
        if isinstance(stmt, (ast.Break, ast.Continue)):
            if ctx.loop_stack:
                ctx.loop_stack[-1].extend(frontier)
            return []
        if isinstance(stmt, ast.If):
            truth = self.branch_filter(stmt.test)
            frontier = self._apply(frontier, stmt.test)
            out: list[State] = []
            if truth is not False:
                out.extend(self._walk_block(list(stmt.body),
                                            list(frontier), ctx))
            if truth is not True:
                out.extend(self._walk_block(list(stmt.orelse),
                                            list(frontier), ctx))
            return _dedupe(out, self.max_states)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = stmt.test if isinstance(stmt, ast.While) else stmt.iter
            frontier = self._apply(frontier, header)
            ctx.loop_stack.append([])
            once = self._walk_block(list(stmt.body), list(frontier), ctx)
            broke = ctx.loop_stack.pop()
            out = list(frontier) + once + broke
            out = _dedupe(out, self.max_states)
            return self._walk_block(list(stmt.orelse), out, ctx)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                frontier = self._apply(frontier, item.context_expr)
            return self._walk_block(list(stmt.body), frontier, ctx)
        if isinstance(stmt, ast.Try):
            return self._walk_try(stmt, frontier, ctx)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Import, ast.ImportFrom,
                             ast.Global, ast.Nonlocal, ast.Pass)):
            return frontier
        return self._apply(frontier, stmt)

    def _walk_try(self, stmt: ast.Try, frontier: list[State],
                  ctx: _Ctx) -> list[State]:
        collector: list[State] = []
        ctx.try_stack.append(collector)
        body_exit = self._walk_block(list(stmt.body), list(frontier), ctx)
        ctx.try_stack.pop()
        raised = _dedupe(collector, self.max_states)

        out: list[State] = []
        if stmt.handlers:
            # Assume handlers catch: every pre-raise state (plus the
            # try-entry state — an exception may precede the first
            # tracked op) enters each handler; nothing propagates past.
            entry = _dedupe(list(frontier) + raised, self.max_states)
            for handler in stmt.handlers:
                out.extend(
                    self._walk_block(list(handler.body), list(entry), ctx))
            body_exit = self._walk_block(list(stmt.orelse), body_exit, ctx)
            out.extend(body_exit)
            out = self._walk_block(list(stmt.finalbody),
                                   _dedupe(out, self.max_states), ctx)
            return out
        # try/finally with no handlers: finalbody runs on the normal exit
        # and on every propagating exceptional state.
        body_exit = self._walk_block(list(stmt.orelse), body_exit, ctx)
        normal = self._walk_block(list(stmt.finalbody), body_exit, ctx)
        escaped = self._walk_block(list(stmt.finalbody), raised, ctx)
        if escaped:
            self._escape(escaped, stmt, ctx)
        return normal


def calls_in(node: ast.AST) -> list[ast.Call]:
    """Every call expression inside ``node`` (helper for step functions)."""
    return [sub for sub in ast.walk(node) if isinstance(sub, ast.Call)]


def stmt_may_call(stmt: ast.AST, names: frozenset[str] | set[str],
                  dotted: Callable[[ast.Call], Any]) -> bool:
    """True when any call in ``stmt`` targets one of ``names``."""
    for call in calls_in(stmt):
        target = dotted(call)
        if target is not None and (target in names
                                   or target.rsplit(".", 1)[-1] in names):
            return True
    return False
