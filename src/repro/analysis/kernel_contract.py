"""Pass 1 — kernel-launch contracts, checked without running the engine.

``KernelCost.validate_launch`` rejects an over-budget shared-memory request
only when the kernel actually executes; this pass applies the same
Equation 6 budget at every construction site whose resources are statically
knowable (literals or module constants), against **every** ``DeviceSpec``
the repo declares. It also checks the tensor-core geometry contracts that
the paper's kernel design assumes: the FP16 HMMA reduction dimension moves
in chunks of 8 (``d_k % 8 == 0``) and the OTF kernel tiles heads in whole
16-row tensor-core tiles (``tile_rows % 16 == 0``).

Call sites whose shapes are runtime values fold to ``None`` and are
skipped — the runtime check still guards those; the point of the pass is
that the *statically decidable* sites fail in CI instead of at launch.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from repro.analysis.findings import Finding, make_finding
from repro.analysis.resolve import callee_name, fold_int, keyword_arg

if TYPE_CHECKING:
    from repro.analysis.runner import AnalysisContext, SourceFile

#: HMMA fragments consume the FP16 reduction dimension 8 elements at a time.
TC_K_ALIGN = 8

#: The tensor-core tile edge the OTF kernel tiles rows by (Section 3.1).
TC_TILE_EDGE = 16


def _budget_findings(sf: "SourceFile", node: ast.Call, smem: int,
                     devices: dict[str, int]) -> list[Finding]:
    """ET101/ET102 for one resolved per-CTA shared-memory request."""
    if not devices or smem <= 0:
        return []
    over = {name: cap for name, cap in devices.items() if smem > cap}
    if not over:
        return []
    listing = ", ".join(f"{name} ({cap} B/SM)"
                        for name, cap in sorted(over.items()))
    if len(over) == len(devices):
        return [make_finding(
            "ET101", sf.display, node.lineno, node.col_offset,
            f"requests {smem} B shared memory per CTA, which exceeds every "
            f"known device: {listing}")]
    return [make_finding(
        "ET102", sf.display, node.lineno, node.col_offset,
        f"requests {smem} B shared memory per CTA, which exceeds {listing}")]


def _otf_smem(seq_len: int, d_k: int, bytes_per_elem: int,
              mixed_precision: bool, tile_rows: int) -> int:
    """Equation 6's budget, mirroring :func:`repro.attention.onthefly.otf_smem_bytes`."""
    score_bytes = 4 if mixed_precision else bytes_per_elem
    return tile_rows * d_k * bytes_per_elem + tile_rows * seq_len * score_bytes


def check_kernel_contract(sf: "SourceFile",
                          ctx: "AnalysisContext") -> list[Finding]:
    """Run the kernel-contract checks over one file."""
    findings: list[Finding] = []
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Call):
            continue
        name = callee_name(node)
        if name == "KernelCost":
            findings.extend(_check_kernel_cost(sf, ctx, node))
        elif name == "otf_smem_bytes":
            findings.extend(_check_otf_smem_site(sf, ctx, node))
        else:
            tile_expr = keyword_arg(node, "tile_rows")
            if tile_expr is not None:
                findings.extend(_check_tile_rows(sf, node, tile_expr))
    return findings


def _check_kernel_cost(sf: "SourceFile", ctx: "AnalysisContext",
                       node: ast.Call) -> list[Finding]:
    smem_expr = keyword_arg(node, "smem_per_cta_bytes")
    if smem_expr is None:
        return []
    smem = fold_int(smem_expr, sf.env)
    if smem is None:
        return []
    return _budget_findings(sf, node, smem, ctx.devices)


def _check_otf_smem_site(sf: "SourceFile", ctx: "AnalysisContext",
                         node: ast.Call) -> list[Finding]:
    """Resolve an ``otf_smem_bytes(...)`` call's tile shape and check it."""
    findings: list[Finding] = []
    seq_expr = keyword_arg(node, "seq_len", 0)
    dk_expr = keyword_arg(node, "d_k", 1)
    bpe_expr = keyword_arg(node, "bytes_per_elem", 2)
    mixed_expr = keyword_arg(node, "mixed_precision", 3)
    tile_expr = keyword_arg(node, "tile_rows", 4)

    bpe = 2 if bpe_expr is None else fold_int(bpe_expr, sf.env)
    mixed = (False if mixed_expr is None
             else bool(fold_int(mixed_expr, sf.env) or 0))
    tile_rows = (TC_TILE_EDGE if tile_expr is None
                 else fold_int(tile_expr, sf.env))
    d_k = None if dk_expr is None else fold_int(dk_expr, sf.env)
    seq_len = None if seq_expr is None else fold_int(seq_expr, sf.env)

    if d_k is not None and bpe == 2 and d_k % TC_K_ALIGN != 0:
        findings.append(make_finding(
            "ET103", sf.display, node.lineno, node.col_offset,
            f"d_k={d_k} is not a multiple of {TC_K_ALIGN}; FP16 HMMA "
            f"fragments consume the reduction dimension {TC_K_ALIGN} at a "
            f"time"))
    if tile_expr is not None:
        findings.extend(_check_tile_rows(sf, node, tile_expr))
    if None not in (seq_len, d_k, bpe, tile_rows):
        assert seq_len is not None and d_k is not None  # for the type checker
        assert bpe is not None and tile_rows is not None
        smem = _otf_smem(seq_len, d_k, bpe, mixed, tile_rows)
        findings.extend(_budget_findings(sf, node, smem, ctx.devices))
    return findings


def _check_tile_rows(sf: "SourceFile", node: ast.Call,
                     tile_expr: ast.expr) -> list[Finding]:
    tile_rows = fold_int(tile_expr, sf.env)
    if tile_rows is None or tile_rows <= 0 or tile_rows % TC_TILE_EDGE == 0:
        return []
    return [make_finding(
        "ET104", sf.display, node.lineno, node.col_offset,
        f"tile_rows={tile_rows} is not a multiple of the {TC_TILE_EDGE}-row "
        f"tensor-core tile edge")]
