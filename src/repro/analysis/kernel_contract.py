"""Pass 1 — kernel-launch contracts, checked without running the engine.

``KernelCost.validate_launch`` rejects an over-budget shared-memory request
only when the kernel actually executes; this pass applies the same
Equation 6 budget at every construction site whose resources are statically
knowable, against **every** ``DeviceSpec`` the repo declares. It also
checks the tensor-core geometry contracts that the paper's kernel design
assumes: the FP16 HMMA reduction dimension moves in chunks of 8
(``d_k % 8 == 0``) and the OTF kernel tiles heads in whole 16-row
tensor-core tiles (``tile_rows % 16 == 0``).

"Statically knowable" is interprocedural in v2: each call site folds
under the constant environment *at that statement* (local assignment
chains included, via :func:`repro.analysis.dataflow.function_env`), a
shape produced by a one-return helper folds through its summary, and a
helper that *contains* a checked construction is re-analyzed under each
caller's bound constant arguments — so ``make_cost(seq_len=8192)`` fails
at the caller even though the helper body alone folds to nothing. Sites
whose shapes stay runtime values are skipped; the runtime check still
guards those.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Mapping

from repro.analysis.callgraph import FuncNode, resolve_call
from repro.analysis.dataflow import Folder, function_env, interpret_block
from repro.analysis.findings import Finding, make_finding
from repro.analysis.resolve import ConstEnv, callee_name, keyword_arg

if TYPE_CHECKING:
    from repro.analysis.runner import AnalysisContext, SourceFile

#: HMMA fragments consume the FP16 reduction dimension 8 elements at a time.
TC_K_ALIGN = 8

#: The tensor-core tile edge the OTF kernel tiles rows by (Section 3.1).
TC_TILE_EDGE = 16


def _budget_findings(display: str, node: ast.Call, smem: int,
                     devices: dict[str, int]) -> list[Finding]:
    """ET101/ET102 for one resolved per-CTA shared-memory request."""
    if not devices or smem <= 0:
        return []
    over = {name: cap for name, cap in devices.items() if smem > cap}
    if not over:
        return []
    listing = ", ".join(f"{name} ({cap} B/SM)"
                        for name, cap in sorted(over.items()))
    if len(over) == len(devices):
        return [make_finding(
            "ET101", display, node.lineno, node.col_offset,
            f"requests {smem} B shared memory per CTA, which exceeds every "
            f"known device: {listing}")]
    return [make_finding(
        "ET102", display, node.lineno, node.col_offset,
        f"requests {smem} B shared memory per CTA, which exceeds {listing}")]


def _otf_smem(seq_len: int, d_k: int, bytes_per_elem: int,
              mixed_precision: bool, tile_rows: int) -> int:
    """Equation 6's budget, mirroring :func:`repro.attention.onthefly.otf_smem_bytes`."""
    score_bytes = 4 if mixed_precision else bytes_per_elem
    return tile_rows * d_k * bytes_per_elem + tile_rows * seq_len * score_bytes


def _flash_smem(br: int, bc: int, d_k: int, d_v: int,
                bytes_per_elem: int) -> int:
    """The two-dimensional flash budget, mirroring
    :func:`repro.attention.flash.flash_smem_bytes`."""
    operand_tiles = (br * d_k + bc * d_k + bc * d_v + br * bc) * bytes_per_elem
    return operand_tiles + br * d_v * 4 + 2 * br * 4


def _own_calls(stmt: ast.stmt) -> list[ast.Call]:
    """Calls evaluated by this statement itself (not by child statements)."""
    out: list[ast.Call] = []

    def rec(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.stmt, ast.excepthandler)):
                continue
            if isinstance(child, ast.Call):
                out.append(child)
            rec(child)

    rec(stmt)
    return out


def _call_envs(sf_tree: ast.Module, base: ConstEnv,
               ctx: "AnalysisContext") -> list[tuple[ast.Call, ConstEnv]]:
    """Every call in the tree paired with its best-known constant env."""
    envs: dict[int, tuple[ast.Call, ConstEnv]] = {}

    def record(stmt: ast.stmt, env: Mapping[str, float]) -> None:
        for call in _own_calls(stmt):
            envs.setdefault(id(call), (call, dict(env)))

    interpret_block(sf_tree.body, base, ctx.summaries, record)
    for node in ast.walk(sf_tree):
        if isinstance(node, ast.ClassDef):
            interpret_block(
                [s for s in node.body
                 if not isinstance(s, (ast.FunctionDef,
                                       ast.AsyncFunctionDef))],
                base, ctx.summaries, record)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            function_env(node, base, summaries=ctx.summaries,
                         observer=record)
    # Anything the interpreter never reached folds with the module env.
    for node in ast.walk(sf_tree):
        if isinstance(node, ast.Call):
            envs.setdefault(id(node), (node, dict(base)))
    return sorted(envs.values(),
                  key=lambda pair: (pair[0].lineno, pair[0].col_offset))


def _check_site(display: str, ctx: "AnalysisContext", node: ast.Call,
                env: ConstEnv, folder: Folder) -> list[Finding]:
    """The v1 per-call checks, folding under a site-specific env."""
    name = callee_name(node)
    if name == "KernelCost":
        return _check_kernel_cost(display, ctx, node, env, folder)
    if name == "otf_smem_bytes":
        return _check_otf_smem_site(display, ctx, node, env, folder)
    if name == "flash_smem_bytes":
        return _check_flash_smem_site(display, ctx, node, env, folder)
    tile_expr = keyword_arg(node, "tile_rows")
    if tile_expr is not None:
        return _check_tile_rows(display, node, tile_expr, env, folder)
    return []


def _has_checked_calls(func: FuncNode) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            if callee_name(node) in ("KernelCost", "otf_smem_bytes",
                                     "flash_smem_bytes") \
                    or keyword_arg(node, "tile_rows") is not None:
                return True
    return False


def _findings_in_func(func_display: str, func: FuncNode, base: ConstEnv,
                      params: ConstEnv | None,
                      ctx: "AnalysisContext") -> list[Finding]:
    """Checked-call findings inside one function under ``base + params``."""
    folder = Folder(ctx.summaries)
    findings: list[Finding] = []
    seen: set[int] = set()

    def record(stmt: ast.stmt, env: Mapping[str, float]) -> None:
        for call in _own_calls(stmt):
            if id(call) not in seen:
                seen.add(id(call))
                findings.extend(
                    _check_site(func_display, ctx, call, dict(env), folder))

    function_env(func, base, params, summaries=ctx.summaries,
                 observer=record)
    return findings


def check_kernel_contract(sf: "SourceFile",
                          ctx: "AnalysisContext") -> list[Finding]:
    """Run the kernel-contract checks over one file."""
    folder = Folder(ctx.summaries)
    findings: list[Finding] = []
    sites = _call_envs(sf.tree, sf.env, ctx)
    for call, env in sites:
        findings.extend(_check_site(sf.display, ctx, call, env, folder))
    findings.extend(_forwarded_findings(sf, ctx, sites, folder))
    return findings


def _forwarded_findings(
        sf: "SourceFile", ctx: "AnalysisContext",
        sites: list[tuple[ast.Call, ConstEnv]],
        folder: Folder) -> list[Finding]:
    """Re-check helpers containing checked calls under callers' constants.

    For each resolved call whose callee body contains a ``KernelCost`` /
    ``otf_smem_bytes`` / ``tile_rows=`` site, bind the caller's foldable
    arguments and re-run the callee's body under them. Findings that only
    appear with the bound arguments are this *call site's* fault and are
    reported here, citing the helper-side line.
    """
    out: list[Finding] = []
    own_baseline: dict[str, set[tuple[str, int, str]]] = {}
    for call, env in sites:
        qual = resolve_call(call, sf.module, None, ctx.symbols)
        if qual is None:
            continue
        info = ctx.symbols.function(qual)
        if info is None or not _has_checked_calls(info.node):
            continue
        params = ctx.summaries.bind_args(call, info, env, folder)
        if not params:
            continue
        callee_base = dict(ctx.summaries.module_envs.get(info.module, {}))
        if qual not in own_baseline:
            own_baseline[qual] = {
                (f.rule_id, f.line, f.message)
                for f in _findings_in_func(info.display, info.node,
                                           callee_base, None, ctx)}
        bound = _findings_in_func(info.display, info.node, callee_base,
                                  params, ctx)
        argtext = ", ".join(f"{k}={v:g}" for k, v in sorted(params.items()))
        for found in bound:
            if (found.rule_id, found.line, found.message) \
                    in own_baseline[qual]:
                continue
            out.append(make_finding(
                found.rule_id, sf.display, call.lineno, call.col_offset,
                f"{found.message} [inside {info.name}() at "
                f"{found.path}:{found.line}, reached with {argtext} "
                f"bound at this call]"))
    return out


def _check_kernel_cost(display: str, ctx: "AnalysisContext", node: ast.Call,
                       env: ConstEnv, folder: Folder) -> list[Finding]:
    smem_expr = keyword_arg(node, "smem_per_cta_bytes")
    if smem_expr is None:
        return []
    smem = folder.fold_int(smem_expr, env)
    if smem is None:
        return []
    return _budget_findings(display, node, smem, ctx.devices)


def _check_otf_smem_site(display: str, ctx: "AnalysisContext",
                         node: ast.Call, env: ConstEnv,
                         folder: Folder) -> list[Finding]:
    """Resolve an ``otf_smem_bytes(...)`` call's tile shape and check it."""
    findings: list[Finding] = []
    seq_expr = keyword_arg(node, "seq_len", 0)
    dk_expr = keyword_arg(node, "d_k", 1)
    bpe_expr = keyword_arg(node, "bytes_per_elem", 2)
    mixed_expr = keyword_arg(node, "mixed_precision", 3)
    tile_expr = keyword_arg(node, "tile_rows", 4)

    bpe = 2 if bpe_expr is None else folder.fold_int(bpe_expr, env)
    mixed = (False if mixed_expr is None
             else bool(folder.fold_int(mixed_expr, env) or 0))
    tile_rows = (TC_TILE_EDGE if tile_expr is None
                 else folder.fold_int(tile_expr, env))
    d_k = None if dk_expr is None else folder.fold_int(dk_expr, env)
    seq_len = None if seq_expr is None else folder.fold_int(seq_expr, env)

    if d_k is not None and bpe == 2 and d_k % TC_K_ALIGN != 0:
        findings.append(make_finding(
            "ET103", display, node.lineno, node.col_offset,
            f"d_k={d_k} is not a multiple of {TC_K_ALIGN}; FP16 HMMA "
            f"fragments consume the reduction dimension {TC_K_ALIGN} at a "
            f"time"))
    if tile_expr is not None:
        findings.extend(_check_tile_rows(display, node, tile_expr, env,
                                         folder))
    if None not in (seq_len, d_k, bpe, tile_rows):
        assert seq_len is not None and d_k is not None  # for the type checker
        assert bpe is not None and tile_rows is not None
        smem = _otf_smem(seq_len, d_k, bpe, mixed, tile_rows)
        findings.extend(_budget_findings(display, node, smem, ctx.devices))
    return findings


def _check_flash_smem_site(display: str, ctx: "AnalysisContext",
                           node: ast.Call, env: ConstEnv,
                           folder: Folder) -> list[Finding]:
    """Resolve a ``flash_smem_bytes(...)`` call's Br×Bc tile and check it.

    The same contracts as the OTF site, extended to two tile dimensions:
    ET103 for the HMMA reduction alignment of ``d_k``, ET104 for either
    tile edge off the 16-row tensor-core grain, ET101/ET102 for the folded
    byte total against every declared device (including the A100).
    """
    findings: list[Finding] = []
    br_expr = keyword_arg(node, "br", 0)
    bc_expr = keyword_arg(node, "bc", 1)
    dk_expr = keyword_arg(node, "d_k", 2)
    dv_expr = keyword_arg(node, "d_v", 3)
    bpe_expr = keyword_arg(node, "bytes_per_elem", 4)

    br = None if br_expr is None else folder.fold_int(br_expr, env)
    bc = None if bc_expr is None else folder.fold_int(bc_expr, env)
    d_k = None if dk_expr is None else folder.fold_int(dk_expr, env)
    d_v = (d_k if dv_expr is None else folder.fold_int(dv_expr, env))
    bpe = 2 if bpe_expr is None else folder.fold_int(bpe_expr, env)

    if d_k is not None and bpe == 2 and d_k % TC_K_ALIGN != 0:
        findings.append(make_finding(
            "ET103", display, node.lineno, node.col_offset,
            f"d_k={d_k} is not a multiple of {TC_K_ALIGN}; FP16 HMMA "
            f"fragments consume the reduction dimension {TC_K_ALIGN} at a "
            f"time"))
    for label, tile in (("br", br), ("bc", bc)):
        if tile is not None and tile > 0 and tile % TC_TILE_EDGE != 0:
            findings.append(make_finding(
                "ET104", display, node.lineno, node.col_offset,
                f"{label}={tile} is not a multiple of the "
                f"{TC_TILE_EDGE}-row tensor-core tile edge"))
    if None not in (br, bc, d_k, d_v, bpe):
        assert br is not None and bc is not None and d_k is not None
        assert d_v is not None and bpe is not None
        smem = _flash_smem(br, bc, d_k, d_v, bpe)
        findings.extend(_budget_findings(display, node, smem, ctx.devices))
    return findings


def _check_tile_rows(display: str, node: ast.Call, tile_expr: ast.expr,
                     env: ConstEnv, folder: Folder) -> list[Finding]:
    tile_rows = folder.fold_int(tile_expr, env)
    if tile_rows is None or tile_rows <= 0 or tile_rows % TC_TILE_EDGE == 0:
        return []
    return [make_finding(
        "ET104", display, node.lineno, node.col_offset,
        f"tile_rows={tile_rows} is not a multiple of the {TC_TILE_EDGE}-row "
        f"tensor-core tile edge")]
