"""Project-wide symbol table and call graph for the analysis substrate.

etlint v1 was a per-function AST walk: every fact a pass used had to be
syntactically present at the call site. The cross-process invariants the
serving/pool layers grew (lock ordering across collaborating classes,
shared-memory lifecycles that span helpers, event-protocol closure) are
*interprocedural*, so this module builds the two shared structures every
v2 pass consumes:

- :class:`SymbolTable` — every function, class, method, per-class lock
  attributes (with ``Condition(self._lock)`` unified into one lock
  group), collaborator attribute types from ``__init__`` construction,
  module-level locks, and per-module import aliases;
- :class:`CallGraph` — resolved call edges between scanned functions
  (``self.m()``, ``self.attr.m()`` through the attribute's constructed
  class, bare names through imports, ``var.m()`` through a local
  single-constructor assignment).

Resolution is deliberately *under*-approximate: an edge exists only when
the callee is provably a scanned function, so passes built on the graph
report no speculative findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.analysis.resolve import dotted_callee

if TYPE_CHECKING:
    from repro.analysis.runner import SourceFile

#: Constructors whose result makes an attribute (or module global) a lock.
LOCK_FACTORIES = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "Lock", "RLock", "Condition",
})

#: Lock factories that produce *re-entrant* primitives (safe to re-acquire).
REENTRANT_FACTORIES = frozenset({"threading.RLock", "RLock"})

FuncNode = ast.FunctionDef | ast.AsyncFunctionDef


def _self_attr(node: ast.expr) -> str | None:
    """``X`` when ``node`` is ``self.X``, else ``None``."""
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


@dataclass
class ClassInfo:
    """Everything the passes need to know about one scanned class."""

    name: str
    module: str
    display: str
    node: ast.ClassDef
    methods: dict[str, FuncNode] = field(default_factory=dict)
    #: every lock-ish attribute name
    lock_attrs: set[str] = field(default_factory=set)
    #: lock attr -> canonical group representative (Condition-over-lock
    #: attributes share their underlying lock's group)
    lock_group: dict[str, str] = field(default_factory=dict)
    #: canonical lock attr -> factory kind ("Lock"/"RLock"/"Condition")
    lock_kind: dict[str, str] = field(default_factory=dict)
    #: attribute name -> class name it was constructed from
    attr_classes: dict[str, str] = field(default_factory=dict)

    def canonical_lock(self, attr: str) -> str | None:
        """Group representative for a lock attribute, or ``None``."""
        return self.lock_group.get(attr)


@dataclass(frozen=True)
class FunctionInfo:
    """One scanned function or method."""

    qualname: str  # "module:func" or "module:Class.method"
    module: str
    display: str
    cls: str | None
    name: str
    node: FuncNode

    @property
    def params(self) -> list[str]:
        """Positional parameter names (``self`` stripped for methods)."""
        args = [a.arg for a in self.node.args.posonlyargs]
        args += [a.arg for a in self.node.args.args]
        if self.cls is not None and args and args[0] in ("self", "cls"):
            args = args[1:]
        return args


def _classify_class(cls: ast.ClassDef, module: str,
                    display: str) -> ClassInfo:
    info = ClassInfo(name=cls.name, module=module, display=display, node=cls)
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[stmt.name] = stmt
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        ctor = dotted_callee(value)
        if ctor is None:
            continue
        for target in node.targets:
            attr = _self_attr(target)
            if attr is None:
                continue
            if ctor in LOCK_FACTORIES:
                info.lock_attrs.add(attr)
                info.lock_kind[attr] = ctor.rsplit(".", 1)[-1]
                # Condition(self._lock) shares the wrapped lock: union the
                # groups so "holding _not_full" == "holding _lock".
                wrapped = None
                if value.args:
                    wrapped = _self_attr(value.args[0])
                info.lock_group[attr] = wrapped if wrapped is not None \
                    else attr
            elif "." not in ctor:
                info.attr_classes[attr] = ctor
    # Collapse group chains (A -> B -> B) and default unknown wraps to self.
    for attr in list(info.lock_group):
        root = info.lock_group[attr]
        seen = {attr}
        while root in info.lock_group and info.lock_group[root] != root \
                and root not in seen:
            seen.add(root)
            root = info.lock_group[root]
        info.lock_group[attr] = root
        info.lock_attrs.add(root)
        info.lock_kind.setdefault(root, info.lock_kind.get(attr, "Lock"))
    return info


@dataclass
class SymbolTable:
    """Cross-file symbol index shared by the v2 passes."""

    #: class name -> info (class names are unique across the repo)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: "module:qualpath" -> info
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: module -> local name -> dotted import target
    imports: dict[str, dict[str, str]] = field(default_factory=dict)
    #: module -> names of module-level lock globals
    module_locks: dict[str, set[str]] = field(default_factory=dict)
    #: module -> module-level ``NAME = ClassName(...)`` instance globals
    instances: dict[str, dict[str, str]] = field(default_factory=dict)

    def function(self, qualname: str) -> FunctionInfo | None:
        return self.functions.get(qualname)

    def method_qual(self, cls: str, method: str) -> str | None:
        """Qualname of ``cls.method`` when both are scanned."""
        info = self.classes.get(cls)
        if info is None or method not in info.methods:
            return None
        return f"{info.module}:{cls}.{method}"


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module \
                and node.level == 0:
            for alias in node.names:
                aliases[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
    return aliases


def build_symbols(files: Iterable["SourceFile"]) -> SymbolTable:
    """Index every class, function, import, and module-level lock."""
    table = SymbolTable()
    for sf in files:
        table.imports[sf.module] = _import_aliases(sf.tree)
        locks: set[str] = set()
        instances: dict[str, str] = {}
        for stmt in sf.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{sf.module}:{stmt.name}"
                table.functions[qual] = FunctionInfo(
                    qualname=qual, module=sf.module, display=sf.display,
                    cls=None, name=stmt.name, node=stmt)
            elif isinstance(stmt, ast.ClassDef):
                info = _classify_class(stmt, sf.module, sf.display)
                table.classes[stmt.name] = info
                for mname, mnode in info.methods.items():
                    qual = f"{sf.module}:{stmt.name}.{mname}"
                    table.functions[qual] = FunctionInfo(
                        qualname=qual, module=sf.module, display=sf.display,
                        cls=stmt.name, name=mname, node=mnode)
            elif isinstance(stmt, ast.Assign) \
                    and isinstance(stmt.value, ast.Call):
                ctor = dotted_callee(stmt.value)
                if ctor in LOCK_FACTORIES:
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            locks.add(target.id)
                elif ctor is not None and "." not in ctor:
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            instances[target.id] = ctor
        if locks:
            table.module_locks[sf.module] = locks
        if instances:
            table.instances[sf.module] = instances
    return table


def local_constructions(func: FuncNode,
                        table: SymbolTable) -> dict[str, str]:
    """``{var: ClassName}`` for locals bound to one scanned constructor."""
    out: dict[str, str] = {}
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign) \
                or not isinstance(node.value, ast.Call):
            continue
        func_expr = node.value.func
        if isinstance(func_expr, ast.Name) and func_expr.id in table.classes:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = func_expr.id
    return out


def resolve_call(call: ast.Call, module: str, cls: ClassInfo | None,
                 table: SymbolTable,
                 local_types: dict[str, str] | None = None) -> str | None:
    """Qualname of the scanned function a call provably targets, or None."""
    func = call.func
    local_types = local_types or {}
    if isinstance(func, ast.Name):
        # Bare name: same-module function, or an imported scanned one.
        qual = f"{module}:{func.id}"
        if qual in table.functions:
            return qual
        target = table.imports.get(module, {}).get(func.id)
        if target and "." in target:
            mod, _, name = target.rpartition(".")
            qual = f"{mod}:{name}"
            if qual in table.functions:
                return qual
        return None
    if not isinstance(func, ast.Attribute):
        return None
    base = func.value
    method = func.attr
    if isinstance(base, ast.Name):
        if base.id == "self" and cls is not None:
            qual = table.method_qual(cls.name, method)
            if qual is not None:
                return qual
            return None
        owner = local_types.get(base.id)
        if owner is not None:
            return table.method_qual(owner, method)
        # Class-level call on a scanned class (classmethod/staticmethod).
        if base.id in table.classes:
            return table.method_qual(base.id, method)
        # Module-level instance global of this module.
        owner = table.instances.get(module, {}).get(base.id)
        if owner is not None:
            return table.method_qual(owner, method)
        # Module alias: `from repro import x` / `import repro.x as y`.
        target = table.imports.get(module, {}).get(base.id)
        if target is not None:
            qual = f"{target}:{method}"
            if qual in table.functions:
                return qual
            src_mod, _, obj = target.rpartition(".")
            if obj in table.classes and table.classes[obj].module == src_mod:
                return table.method_qual(obj, method)
            owner = table.instances.get(src_mod, {}).get(obj)
            if owner is not None:
                return table.method_qual(owner, method)
        return None
    # self.<attr>.method() through the attribute's constructed class.
    attr = _self_attr(base)
    if attr is not None and cls is not None:
        owner = cls.attr_classes.get(attr)
        if owner is not None:
            return table.method_qual(owner, method)
    return None


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge."""

    caller: str
    callee: str
    node: ast.Call


class CallGraph:
    """Resolved call edges between scanned functions."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.edges: dict[str, list[CallSite]] = {}
        self.callers: dict[str, list[CallSite]] = {}
        for qual, info in table.functions.items():
            cls = table.classes.get(info.cls) if info.cls else None
            local_types = local_constructions(info.node, table)
            sites: list[CallSite] = []
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = resolve_call(node, info.module, cls, table,
                                      local_types)
                if callee is not None and callee != qual:
                    site = CallSite(caller=qual, callee=callee, node=node)
                    sites.append(site)
                    self.callers.setdefault(callee, []).append(site)
            self.edges[qual] = sites

    def callees(self, qualname: str) -> list[CallSite]:
        return self.edges.get(qualname, [])

    def call_sites_of(self, qualname: str) -> list[CallSite]:
        """Every resolved site that calls ``qualname``."""
        return self.callers.get(qualname, [])

    def reachable(self, roots: Iterable[str], limit: int = 500) -> set[str]:
        """Functions reachable from ``roots`` through resolved edges."""
        seen: set[str] = set()
        stack = [r for r in roots if r in self.edges]
        while stack and len(seen) < limit:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            for site in self.edges.get(qual, []):
                if site.callee not in seen:
                    stack.append(site.callee)
        return seen


def build_callgraph(table: SymbolTable) -> CallGraph:
    """Build the project call graph from the symbol table."""
    return CallGraph(table)
