"""Content-addressed findings cache (``.etlint-cache/``).

Re-running etlint on an unchanged tree should cost one hash pass, not a
full re-analysis. Each analyzed file gets a cache entry keyed by the
sha256 of its **content** plus the digest of the **whole analyzed tree**
(:func:`repro.analysis.runner.project_digest`): the v2 passes are
interprocedural, so a change anywhere can add or remove findings in a
file that did not itself change. Editing any file therefore invalidates
every entry — the cache is a whole-tree memo, not a per-file one, which
is the strongest guarantee a sound interprocedural cache can offer.

Entries are JSON (rule id, line, col, message — severity and hint are
re-derived from the rule registry on load, so a rule-text tweak never
resurrects stale wording). ``CACHE_VERSION`` is baked into every key;
bump it when pass semantics change. The directory is disposable and
gitignored; ``--no-cache`` bypasses it entirely.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro.analysis.findings import RULES, Finding, make_finding

if TYPE_CHECKING:
    from repro.analysis.runner import SourceFile

CACHE_DIR_NAME = ".etlint-cache"
#: bump when pass semantics change (invalidates every entry)
CACHE_VERSION = 2
#: keep the directory bounded; oldest entries beyond this are pruned
MAX_ENTRIES = 512


class FindingsCache:
    """Per-file findings memo under ``<root>/.etlint-cache/``."""

    def __init__(self, root: Path) -> None:
        self.dir = root / CACHE_DIR_NAME
        self.hits = 0
        self.misses = 0

    def _key(self, sf: "SourceFile", tree_digest: str) -> str:
        h = hashlib.sha256()
        h.update(f"v{CACHE_VERSION}\n".encode())
        h.update(sf.display.encode("utf-8"))
        h.update(b"\n")
        h.update(sf.sha.encode("utf-8"))
        h.update(b"\n")
        h.update(tree_digest.encode("utf-8"))
        return h.hexdigest()

    def _path(self, key: str) -> Path:
        return self.dir / f"{key}.json"

    def get(self, sf: "SourceFile", tree_digest: str) -> list[Finding] | None:
        """Cached findings for ``sf`` in this exact tree, or ``None``."""
        path = self._path(self._key(sf, tree_digest))
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(payload, dict) or \
                payload.get("version") != CACHE_VERSION:
            self.misses += 1
            return None
        findings: list[Finding] = []
        for entry in payload.get("findings", []):
            rule = entry.get("rule")
            if rule not in RULES:
                self.misses += 1
                return None  # rule retired since caching: recompute
            findings.append(make_finding(
                rule, sf.display, int(entry["line"]), int(entry["col"]),
                str(entry["message"])))
        self.hits += 1
        return findings

    def put(self, sf: "SourceFile", tree_digest: str,
            findings: list[Finding]) -> None:
        """Record ``sf``'s raw (pre-suppression) findings."""
        payload = {
            "version": CACHE_VERSION,
            "file": sf.display,
            "sha256": sf.sha,
            "tree": tree_digest,
            "findings": [
                {"rule": f.rule_id, "line": f.line, "col": f.col,
                 "message": f.message}
                for f in findings
            ],
        }
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
            path = self._path(self._key(sf, tree_digest))
            path.write_text(json.dumps(payload, indent=1) + "\n",
                            encoding="utf-8")
        except OSError:
            return  # a read-only checkout must not break analysis
        self._prune()

    def _prune(self) -> None:
        try:
            entries = sorted(self.dir.glob("*.json"),
                             key=lambda p: p.stat().st_mtime)
        except OSError:
            return
        for stale in entries[:-MAX_ENTRIES] if len(entries) > MAX_ENTRIES \
                else []:
            try:
                stale.unlink()
            except OSError:
                pass
