"""Pass 4 — a lightweight race detector for the serving layer's shared state.

The serving contract (DESIGN.md §7/§8) is that :class:`AsyncServer` owns
one condition/lock and every mutation of its shared state — its own
attributes *and* its deliberately lock-less collaborators
(:class:`MetricsRegistry`, the tracer store) — happens while holding it;
the deterministic :class:`Scheduler` is single-threaded and stays
lock-free by design. The replica pool's parent-side classes
(:class:`~repro.serving.pool.server.PoolServer`,
:class:`~repro.serving.pool.router.Router`,
:class:`~repro.serving.pool.router.AdmissionController`) each own a
lock and are covered by the same scan — the pool's dispatcher and
collector threads share all three. This pass checks the statically
checkable half of that contract:

- a class that *owns* a lock attribute (``self._lock = threading.Lock()``,
  an ``RLock`` or a ``Condition``) must guard every ``self.*`` write and
  every mutating method call on a plain-container attribute with
  ``with self.<lock>:`` outside ``__init__`` — ET401;
- mutating calls on collaborator attributes whose classes were scanned
  and own **no** lock (``self.metrics.observe_response(...)``) must be
  under the owner's lock too — ET402.

Classes without a lock attribute are skipped: they either are
single-threaded by design (Scheduler) or rely on an owner's lock, which
is exactly what ET402 checks from the owner's side.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.findings import Finding, make_finding
from repro.analysis.resolve import dotted_callee

if TYPE_CHECKING:
    from repro.analysis.runner import AnalysisContext, SourceFile

#: Constructors whose result makes an attribute a lock for this pass.
_LOCK_FACTORIES = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "Lock", "RLock", "Condition",
})

#: Exact method names that mutate a plain container in place.
_MUTATORS = frozenset({
    "append", "appendleft", "extend", "insert", "remove", "discard",
    "clear", "pop", "popleft", "popitem", "update", "setdefault", "add",
    "push",
})

#: Method-name prefixes that mutate a collaborator's internal state.
_COLLAB_MUTATOR_PREFIXES = ("observe_", "record_")

#: Methods whose body is construction-time and exempt from the contract.
_EXEMPT_METHODS = frozenset({"__init__", "__post_init__", "__new__"})


@dataclass
class _ClassInfo:
    """What the pass needs to know about one class definition."""

    node: ast.ClassDef
    lock_attrs: set[str] = field(default_factory=set)
    #: attribute name -> class name it was constructed from in __init__
    attr_classes: dict[str, str] = field(default_factory=dict)


def _self_attr(node: ast.expr) -> str | None:
    """``X`` when ``node`` is ``self.X``, else ``None``."""
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


def _classify(cls: ast.ClassDef) -> _ClassInfo:
    info = _ClassInfo(node=cls)
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        ctor = dotted_callee(value)
        for target in node.targets:
            attr = _self_attr(target)
            if attr is None or ctor is None:
                continue
            if ctor in _LOCK_FACTORIES:
                info.lock_attrs.add(attr)
            elif "." not in ctor:
                info.attr_classes[attr] = ctor
    return info


def collect_classes(tree: ast.Module) -> list[_ClassInfo]:
    """Classify every top-level (or nested) class definition in a module."""
    return [_classify(node) for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef)]


def lockless_class_names(trees: list[ast.Module]) -> set[str]:
    """Names of scanned classes that do not own a lock attribute."""
    names: set[str] = set()
    for tree in trees:
        for info in collect_classes(tree):
            if not info.lock_attrs:
                names.add(info.node.name)
    return names


class _MethodChecker(ast.NodeVisitor):
    """Walks one method body tracking ``with self.<lock>`` nesting."""

    def __init__(self, sf: "SourceFile", info: _ClassInfo,
                 lockless: set[str]) -> None:
        self.sf = sf
        self.info = info
        self.lockless = lockless
        self.depth = 0
        self.findings: list[Finding] = []

    # -- lock scope tracking ------------------------------------------------

    def _holds_lock(self, stmt: ast.With) -> bool:
        for item in stmt.items:
            attr = _self_attr(item.context_expr)
            if attr is not None and attr in self.info.lock_attrs:
                return True
        return False

    def visit_With(self, node: ast.With) -> None:
        held = self._holds_lock(node)
        self.depth += 1 if held else 0
        self.generic_visit(node)
        self.depth -= 1 if held else 0

    # -- mutation sites -----------------------------------------------------

    def _written_attrs(self, target: ast.expr) -> list[tuple[ast.expr, str]]:
        """(node, attr) pairs for every ``self.X`` a target writes."""
        out: list[tuple[ast.expr, str]] = []
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                out.extend(self._written_attrs(elt))
            return out
        node: ast.expr = target
        if isinstance(node, (ast.Subscript, ast.Starred)):
            node = node.value
        attr = _self_attr(node)
        if attr is not None:
            out.append((node, attr))
        return out

    def _flag_write(self, node: ast.expr, attr: str) -> None:
        if self.depth > 0 or attr in self.info.lock_attrs:
            return
        locks = "/".join(sorted(self.info.lock_attrs))
        self.findings.append(make_finding(
            "ET401", self.sf.display, node.lineno, node.col_offset,
            f"self.{attr} written outside 'with self.{locks}:' in "
            f"{self.info.node.name}"))

    def _check_targets(self, targets: list[ast.expr]) -> None:
        for target in targets:
            for node, attr in self._written_attrs(target):
                self._flag_write(node, attr)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_targets(node.targets)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_targets([node.target])
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_targets([node.target])
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        self._check_targets(list(node.targets))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            owner = _self_attr(func.value)
            if owner is not None and owner not in self.info.lock_attrs:
                self._check_method_call(node, func, owner)
        self.generic_visit(node)

    def _check_method_call(self, node: ast.Call, func: ast.Attribute,
                           owner: str) -> None:
        if self.depth > 0:
            return
        method = func.attr
        owner_cls = self.info.attr_classes.get(owner)
        locks = "/".join(sorted(self.info.lock_attrs))
        if owner_cls is not None and owner_cls in self.lockless:
            if method in _MUTATORS or \
                    method.startswith(_COLLAB_MUTATOR_PREFIXES):
                self.findings.append(make_finding(
                    "ET402", self.sf.display, node.lineno, node.col_offset,
                    f"self.{owner}.{method}(...) mutates lock-less "
                    f"{owner_cls} outside 'with self.{locks}:'"))
            return
        if owner_cls is None and method in _MUTATORS:
            # A plain container attribute (dict/list/deque/...).
            self._flag_write(func.value, owner)


def check_thread_safety(sf: "SourceFile",
                        ctx: "AnalysisContext") -> list[Finding]:
    """Run the race detector over one file's lock-owning classes."""
    findings: list[Finding] = []
    for info in collect_classes(sf.tree):
        if not info.lock_attrs:
            continue
        for stmt in info.node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name in _EXEMPT_METHODS:
                continue
            checker = _MethodChecker(sf, info, ctx.lockless_classes)
            for body_stmt in stmt.body:
                checker.visit(body_stmt)
            findings.extend(checker.findings)
    return findings
