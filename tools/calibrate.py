"""Calibration harness: evaluates the paper's anchor observables.

Run after changing cost-model constants; compares against the published
targets. Not part of the library — a development tool.

Targets (from the paper):
  T1  TensorRT BERT encoder @128       ~160 us
  T2  PyTorch / TensorRT               ~4.0x
  T3  FasterTransformer / TensorRT     ~0.74x
  T4  TRT / E.T.(AA,95%)               ~3.4x
  T5  FT / E.T.(AA,95%)                ~2.5x
  T6  PT / E.T.(AA,95%)                ~13.7x
  T7  TRT-attn / best-OTF @128 BERT    ~3.3x  (avg 64..256)
  T8  crossover seqlen                 208..256
  T9  OTF achieved BW @128             ~311 GB/s
  T10 TRT attention steps achieved BW  ~98 GB/s
  T11 tile-GEMM speedup @95%, d=768    ~3.5x
  T12 full/partial OTF @64             ~1.5x
"""

import numpy as np

from repro.config import BERT_BASE
from repro.gpu import Timeline
from repro.ops.context import fp16_ctx
from repro.ops import ExecContext, gemm, GemmAlgo, tile_gemm
from repro.attention import (fused_attention, otf_attention,
                             partial_otf_attention, otf_crossover_seqlen)
from repro.runtime import (EncoderWeights, ETEngine, TensorRTLikeEngine,
                           PyTorchLikeEngine, FasterTransformerLikeEngine)
from repro.pruning import PruneMethod
from repro.tensor import TileBCSR
from repro.pruning.masks import tile_mask


def main() -> None:
    rng = np.random.default_rng(0)
    x = rng.standard_normal((128, 768))
    dense = EncoderWeights.random(BERT_BASE, rng, num_layers=1)
    t_pt = PyTorchLikeEngine(dense).run(x).latency_us
    t_trt = TensorRTLikeEngine(dense).run(x).latency_us
    t_ft = FasterTransformerLikeEngine(dense).run(x).latency_us
    t_et_dense = ETEngine(dense).run(x).latency_us

    w95 = EncoderWeights.random(BERT_BASE, np.random.default_rng(1),
                                num_layers=1).prune(PruneMethod.ATTENTION_AWARE, 0.95)
    t_et95 = ETEngine(w95).run(x).latency_us

    print(f"T1 trt encoder      {t_trt:7.1f}  (target ~160)")
    print(f"T2 pt/trt           {t_pt / t_trt:7.2f}  (target ~4.0)")
    print(f"T3 ft/trt           {t_ft / t_trt:7.2f}  (target ~0.74)")
    print(f"T4 trt/et95         {t_trt / t_et95:7.2f}  (target ~3.4)")
    print(f"T5 ft/et95          {t_ft / t_et95:7.2f}  (target ~2.5)")
    print(f"T6 pt/et95          {t_pt / t_et95:7.2f}  (target ~13.7)")
    print(f"    [et dense {t_et_dense:.1f}, et95 {t_et95:.1f}, pt {t_pt:.0f}]")

    # attention-only comparison, BERT geometry, with mask
    H, dk = 12, 64
    speeds = []
    for s in (64, 128, 192, 256):
        q, k, v = (rng.standard_normal((H, s, dk)) for _ in range(3))
        mask = np.zeros((s, s))
        tl = Timeline(); fused_attention(fp16_ctx(tl), q, k, v, mask); t_f = tl.total_time_us
        tl = Timeline(); otf_attention(fp16_ctx(tl), q, k, v, mask); t_o = tl.total_time_us
        tl = Timeline(); partial_otf_attention(fp16_ctx(tl), q, k, v, mask); t_p = tl.total_time_us
        speeds.append(t_f / min(t_o, t_p))
        if s == 64:
            fp64_ratio = t_p / t_o
        if s == 128:
            tl = Timeline()
            ctx = fp16_ctx(tl)
            otf_attention(ctx, q, k, v, mask)
            bw_otf = tl.achieved_bw_gbs
            tl2 = Timeline()
            fused_attention(fp16_ctx(tl2), q, k, v, mask)
            bw_trt = tl2.achieved_bw_gbs
    print(f"T7 trt/otf avg      {np.mean(speeds):7.2f}  (target ~3.3)  per-s={['%.2f'%v for v in speeds]}")
    tl = Timeline()
    co = otf_crossover_seqlen(fp16_ctx(tl), H, dk, with_mask=True)
    print(f"T8 crossover        {co}  (target 208..256)")
    print(f"T9 otf bw           {bw_otf:7.1f}  (target ~311)")
    print(f"T10 trt attn bw     {bw_trt:7.1f}  (target ~98)")
    print(f"T12 full/part @64   {fp64_ratio:7.2f}  (target ~1.5)")

    # T11: tile gemm vs dense ALGO5 at 95%, (128 x 768) @ (768 x 768)
    wt = rng.standard_normal((768, 768))
    m95 = tile_mask(wt, 0.95)
    fmt = TileBCSR.from_dense(wt * m95)
    tl = Timeline(); ctx = fp16_ctx(tl)
    gemm(ctx, x, wt.T, GemmAlgo.ALGO5_TENSOR_OP)
    t_dense = tl.total_time_us
    tl = Timeline(); ctx = fp16_ctx(tl)
    tile_gemm(ctx, x, fmt)
    t_tile = tl.total_time_us
    print(f"T11 tile95 speedup  {t_dense / t_tile:7.2f}  (target ~3.5)")


if __name__ == "__main__":
    main()
