#!/usr/bin/env python
"""Calibration harness: evaluates the paper's anchor observables.

Run after changing cost-model constants; compares every anchor against its
published target within a per-anchor tolerance band. Not part of the
library — a development tool (the anchors double as the cost model's
regression suite).

Targets (from the paper):
  T1  TensorRT BERT encoder @128       ~160 us
  T2  PyTorch / TensorRT               ~4.0x
  T3  FasterTransformer / TensorRT     ~0.74x
  T4  TRT / E.T.(AA,95%)               ~3.4x
  T5  FT / E.T.(AA,95%)                ~2.5x
  T6  PT / E.T.(AA,95%)                ~13.7x
  T7  TRT-attn / best-OTF @128 BERT    ~3.3x  (avg 64..256)
  T8  crossover seqlen                 208..256
  T9  OTF achieved BW @128             ~311 GB/s
  T10 TRT attention steps achieved BW  ~98 GB/s
  T11 tile-GEMM speedup @95%, d=768    ~3.5x
  T12 full/partial OTF @64             ~1.5x

Flash anchors (this repo's three-way re-study, no published targets):
  F1  flash max |err| vs reference      ~0 (seqLen x d_k grid)
  F2  flash crossover seqlen (V100S)    160..224
  F3  OTF / flash @320                  >1 (flash wins past crossover)

Exit codes identify which anchor class drifted (CI log triage):

- ``0`` — every anchor within tolerance;
- ``2`` — usage error (argparse);
- ``3`` — an engine-latency anchor missed (T1–T6);
- ``4`` — an attention/crossover anchor missed (T7, T8, T12);
- ``5`` — a memory-bandwidth anchor missed (T9, T10);
- ``6`` — the sparse-GEMM anchor missed (T11);
- ``7`` — a flash-attention anchor missed (F1-F3).

When several classes miss, the lowest-numbered failing class sets the
exit code; every miss is printed regardless.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass

import numpy as np

from repro.attention import (flash_attention, flash_crossover_seqlen,
                             fused_attention, otf_attention,
                             otf_crossover_seqlen, partial_otf_attention)
from repro.attention.reference import reference_attention
from repro.ops.softmax import causal_mask
from repro.config import BERT_BASE
from repro.gpu import Timeline
from repro.ops import GemmAlgo, gemm, tile_gemm
from repro.ops.context import fp16_ctx
from repro.pruning import PruneMethod
from repro.pruning.masks import tile_mask
from repro.runtime import (EncoderWeights, ETEngine,
                           FasterTransformerLikeEngine, PyTorchLikeEngine,
                           TensorRTLikeEngine)
from repro.tensor import TileBCSR

EXIT_OK = 0
EXIT_ENGINE = 3
EXIT_ATTENTION = 4
EXIT_BANDWIDTH = 5
EXIT_SPARSE = 6
EXIT_FLASH = 7

#: Anchor classes in exit-code priority order.
CLASSES = ("engine", "attention", "bandwidth", "sparse", "flash")
_CLASS_EXIT = {"engine": EXIT_ENGINE, "attention": EXIT_ATTENTION,
               "bandwidth": EXIT_BANDWIDTH, "sparse": EXIT_SPARSE,
               "flash": EXIT_FLASH}


@dataclass(frozen=True)
class Anchor:
    """One measured observable vs its published target."""

    anchor_id: str
    klass: str
    label: str
    value: float
    target: float
    #: Relative tolerance; the analytical model is calibrated to the two
    #: Fig. 12 bandwidth points, so secondary anchors carry wider bands.
    rel_tol: float = 0.35
    lo: float | None = None  # range targets (T8) override rel_tol
    hi: float | None = None

    def ok(self, scale: float) -> bool:
        if self.lo is not None and self.hi is not None:
            slack = (self.hi - self.lo) * (scale - 1.0) / 2.0
            return self.lo - slack <= self.value <= self.hi + slack
        return abs(self.value - self.target) <= self.rel_tol * scale * self.target

    def row(self, scale: float) -> str:
        status = "ok" if self.ok(scale) else "MISS"
        if self.lo is not None and self.hi is not None:
            band = f"{self.lo:g}..{self.hi:g}"
        else:
            band = f"~{self.target:g} ±{self.rel_tol * scale:.0%}"
        return (f"{self.anchor_id:<4} {self.label:<22} {self.value:8.2f}  "
                f"(target {band})  [{self.klass}] {status}")


def measure(seed: int) -> list[Anchor]:
    """Run every anchor experiment; deterministic per seed."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((128, 768))
    dense = EncoderWeights.random(BERT_BASE, rng, num_layers=1)
    t_pt = PyTorchLikeEngine(dense).run(x).latency_us
    t_trt = TensorRTLikeEngine(dense).run(x).latency_us
    t_ft = FasterTransformerLikeEngine(dense).run(x).latency_us

    w95 = EncoderWeights.random(
        BERT_BASE, np.random.default_rng(seed + 1),
        num_layers=1).prune(PruneMethod.ATTENTION_AWARE, 0.95)
    t_et95 = ETEngine(w95).run(x).latency_us

    # Attention-only comparison, BERT geometry, with mask.
    heads, d_k = 12, 64
    speeds = []
    fp64_ratio = bw_otf = bw_trt = 0.0
    for s in (64, 128, 192, 256):
        q, k, v = (rng.standard_normal((heads, s, d_k)) for _ in range(3))
        mask = np.zeros((s, s))
        t_f = _attn_time(fused_attention, q, k, v, mask)
        t_o = _attn_time(otf_attention, q, k, v, mask)
        t_p = _attn_time(partial_otf_attention, q, k, v, mask)
        speeds.append(t_f / min(t_o, t_p))
        if s == 64:
            fp64_ratio = t_p / t_o
        if s == 128:
            bw_otf = tl_bw(otf_attention, q, k, v, mask)
            bw_trt = tl_bw(fused_attention, q, k, v, mask)
    tl = Timeline()
    crossover = float(otf_crossover_seqlen(fp16_ctx(tl), heads, d_k,
                                           with_mask=True))

    # F1: flash numerics vs the O(s^2)-memory reference on a seqLen x d_k
    # grid (odd lengths exercise ragged final tiles; causal mask exercises
    # fully-masked score tiles).
    flash_err = 0.0
    for s in (8, 48, 128, 333, 512):
        for dk in (32, 64, 128):
            g = np.random.default_rng(seed + s * 1000 + dk)
            fq, fk, fv = (g.standard_normal((heads, s, dk))
                          for _ in range(3))
            fmask = causal_mask(s)
            z = flash_attention(fp16_ctx(Timeline()), fq, fk, fv, fmask)
            ref = reference_attention(fq, fk, fv, fmask)
            ref = ref.transpose(1, 0, 2).reshape(s, heads * dk)
            flash_err = max(flash_err, float(np.abs(z - ref).max()))

    # F2/F3: flash wins past its measured V100S crossover (~192).
    flash_cross = float(flash_crossover_seqlen(fp16_ctx(Timeline()), heads,
                                               d_k, with_mask=True))
    s320 = 320
    q3, k3, v3 = (rng.standard_normal((heads, s320, d_k)) for _ in range(3))
    m3 = np.zeros((s320, s320))
    flash_gain = (_attn_time(otf_attention, q3, k3, v3, m3)
                  / _attn_time(flash_attention, q3, k3, v3, m3))

    # T11: tile gemm vs dense ALGO5 at 95 % sparsity, (128x768) @ (768x768).
    wt = rng.standard_normal((768, 768))
    fmt = TileBCSR.from_dense(wt * tile_mask(wt, 0.95))
    tl = Timeline()
    gemm(fp16_ctx(tl), x, wt.T, GemmAlgo.ALGO5_TENSOR_OP)
    t_dense = tl.total_time_us
    tl = Timeline()
    tile_gemm(fp16_ctx(tl), x, fmt)
    t_tile = tl.total_time_us

    return [
        Anchor("T1", "engine", "trt encoder us", t_trt, 160.0, 0.25),
        Anchor("T2", "engine", "pt/trt", t_pt / t_trt, 4.0, 0.30),
        Anchor("T3", "engine", "ft/trt", t_ft / t_trt, 0.74, 0.30),
        Anchor("T4", "engine", "trt/et95", t_trt / t_et95, 3.4, 0.30),
        Anchor("T5", "engine", "ft/et95", t_ft / t_et95, 2.5, 0.30),
        Anchor("T6", "engine", "pt/et95", t_pt / t_et95, 13.7, 0.30),
        Anchor("T7", "attention", "trt/otf avg", float(np.mean(speeds)),
               3.3, 0.35),
        Anchor("T8", "attention", "crossover seqlen", crossover, 232.0,
               lo=208.0, hi=256.0),
        Anchor("T9", "bandwidth", "otf bw GB/s", bw_otf, 311.0, 0.35),
        Anchor("T10", "bandwidth", "trt attn bw GB/s", bw_trt, 98.0, 0.35),
        Anchor("T11", "sparse", "tile95 speedup", t_dense / t_tile,
               3.5, 0.35),
        Anchor("T12", "attention", "full/part @64", fp64_ratio, 1.5, 0.80),
        Anchor("F1", "flash", "flash max err", flash_err, 0.0,
               lo=0.0, hi=1e-5),
        Anchor("F2", "flash", "flash crossover", flash_cross, 192.0,
               lo=160.0, hi=224.0),
        Anchor("F3", "flash", "otf/flash @320", flash_gain, 3.0,
               lo=1.05, hi=10.0),
    ]


def _attn_time(attn, q, k, v, mask) -> float:
    """Total time of one attention operator run on a fresh timeline."""
    tl = Timeline()
    attn(fp16_ctx(tl), q, k, v, mask)
    return tl.total_time_us


def tl_bw(attn, q, k, v, mask) -> float:
    """Achieved bandwidth of one attention operator run on a fresh timeline."""
    tl = Timeline()
    attn(fp16_ctx(tl), q, k, v, mask)
    return tl.achieved_bw_gbs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python tools/calibrate.py",
        description="Evaluate the cost model against the paper's anchor "
                    "observables (T1-T12) and fail with a per-class exit "
                    "code when an anchor drifts out of tolerance.",
        epilog="Exit codes: 0 ok, 2 usage, 3 engine-latency anchor miss "
               "(T1-T6), 4 attention/crossover miss (T7/T8/T12), "
               "5 bandwidth miss (T9/T10), 6 sparse-GEMM miss (T11), "
               "7 flash-attention miss (F1-F3).",
    )
    parser.add_argument(
        "--only", choices=CLASSES, default=None,
        help="evaluate (and gate on) one anchor class only")
    parser.add_argument(
        "--tol-scale", type=float, default=1.0, metavar="X",
        help="multiply every tolerance band by X (default 1.0); "
             "use >1 to loosen while re-calibrating constants")
    parser.add_argument(
        "--seed", type=int, default=0,
        help="RNG seed for the synthetic activations (default 0)")
    parser.add_argument(
        "--list", action="store_true", dest="list_anchors",
        help="list anchors and their classes without measuring")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.tol_scale <= 0:
        build_parser().error("--tol-scale must be positive")
    if args.list_anchors:
        listing = {
            "engine": "T1-T6 encoder-latency anchors (exit 3)",
            "attention": "T7/T8/T12 attention + crossover anchors (exit 4)",
            "bandwidth": "T9/T10 Fig. 12 achieved-bandwidth anchors (exit 5)",
            "sparse": "T11 tile-GEMM speedup anchor (exit 6)",
            "flash": "F1-F3 flash numerics + crossover anchors (exit 7)",
        }
        for klass in CLASSES:
            print(f"{klass:<10} {listing[klass]}")
        return EXIT_OK

    anchors = measure(args.seed)
    if args.only is not None:
        anchors = [a for a in anchors if a.klass == args.only]
    failed_classes: list[str] = []
    for anchor in anchors:
        print(anchor.row(args.tol_scale))
        if not anchor.ok(args.tol_scale) and anchor.klass not in failed_classes:
            failed_classes.append(anchor.klass)
    if not failed_classes:
        print("calibrate: all anchors within tolerance")
        return EXIT_OK
    for klass in failed_classes:
        print(f"calibrate: {klass} anchor class out of tolerance "
              f"(exit {_CLASS_EXIT[klass]})", file=sys.stderr)
    return min(_CLASS_EXIT[k] for k in failed_classes)


if __name__ == "__main__":
    sys.exit(main())
