#!/usr/bin/env python
"""Maintain and gate the serving-bench perf history.

``benchmarks/bench_serving.py --json`` measures one point; this tool
turns points into a trajectory and a CI gate:

append
    Append one labeled report snapshot to ``BENCH_history.jsonl``::

        python tools/bench_history.py append --report BENCH_serving.json \
            --label "$GITHUB_SHA"

check
    Compare a freshly generated report against the committed baseline
    under the deterministic gates (:data:`repro.obs.history.GATED_METRICS`
    — loadgen throughput, p99, SLO attainment); exit 1 on regression.
    On failure, ``--attribution-out`` writes a stage-attribution artifact
    (from the reports' ``loadgen.stage_time_us`` waterfall sections)
    naming *which stage* regressed, instead of a bare threshold trip::

        python tools/bench_history.py check --baseline BENCH_serving.json \
            --current /tmp/BENCH_new.json --attribution-out stage_attr.json

selftest
    Prove the gate fires: synthesize a degraded copy of the baseline
    (throughput −20%, p99 +20%, attainment −20%, execution-stage time
    +30%) and fail (exit 3) if ``check`` does NOT reject it, if it
    rejects the baseline against itself, or if the stage-attribution
    artifact fails to blame the injected stage. CI runs this so a
    silently disabled gate is itself a failure.

Exit codes: 0 ok, 1 regression detected (check), 2 usage,
3 selftest found the gate broken.
"""

from __future__ import annotations

import argparse
import copy
import json
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.obs.history import (  # noqa: E402
    GATED_METRICS,
    append_history,
    attribute_regression,
    check_regressions,
    load_history,
    lookup,
)

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_SELFTEST = 3

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_report(path: Path) -> dict:
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def cmd_append(args: argparse.Namespace) -> int:
    report = _load_report(args.report)
    entry = append_history(str(args.history), report, args.label)
    n = len(load_history(str(args.history)))
    print(f"appended {args.label!r} to {args.history} ({n} entries): "
          f"{entry['metrics']}")
    return EXIT_OK


def _write_attribution(path: Path, baseline: dict, current: dict,
                       failures: list) -> dict:
    """Write the which-stage-regressed artifact next to a gate failure."""
    attribution = attribute_regression(baseline, current, failures)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(attribution, f, sort_keys=True, indent=2)
        f.write("\n")
    return attribution


def cmd_check(args: argparse.Namespace) -> int:
    baseline = _load_report(args.baseline)
    current = _load_report(args.current)
    failures = check_regressions(baseline, current)
    for path, _, _ in GATED_METRICS:
        base, cur = lookup(baseline, path), lookup(current, path)
        print(f"{path}: baseline={base} current={cur}")
    if failures:
        for f in failures:
            print(f"REGRESSION: {f}", file=sys.stderr)
        if args.attribution_out is not None:
            attribution = _write_attribution(
                args.attribution_out, baseline, current, failures)
            blame = attribution["blame"]
            print(f"stage attribution written to {args.attribution_out}"
                  + (f": '{blame}' grew the most" if blame else
                     " (no stage data in the reports)"),
                  file=sys.stderr)
        return EXIT_REGRESSION
    print(f"OK: no regression against {args.baseline} "
          f"({len(GATED_METRICS)} gated metrics)")
    return EXIT_OK


#: The stage the selftest inflates; attribution must blame exactly it.
_SELFTEST_STAGE = "execution"


def _degrade(report: dict) -> dict:
    """A copy of ``report`` pushed past every gate's tolerance.

    Also inflates the ``execution`` stage's waterfall time by 30% so the
    selftest can prove the attribution artifact blames the right stage.
    """
    bad = copy.deepcopy(report)
    loadgen = bad.setdefault("loadgen", {})
    for path, direction, _ in GATED_METRICS:
        key = path.split(".", 1)[1]
        value = loadgen.get(key)
        if not isinstance(value, (int, float)) or value == 0:
            value = 1.0
        loadgen[key] = value * (0.8 if direction == "higher" else 1.2)
    stage_us = loadgen.get("stage_time_us")
    if isinstance(stage_us, dict):
        grown = stage_us.get(_SELFTEST_STAGE, 0.0) * 1.3 + 1.0
        stage_us[_SELFTEST_STAGE] = grown
        total = sum(v for v in stage_us.values()
                    if isinstance(v, (int, float)))
        if total > 0 and isinstance(loadgen.get("stage_shares"), dict):
            loadgen["stage_shares"] = {
                k: v / total for k, v in stage_us.items()
                if isinstance(v, (int, float))}
    return bad


def cmd_selftest(args: argparse.Namespace) -> int:
    baseline = _load_report(args.baseline)
    if check_regressions(baseline, baseline):
        print("SELFTEST FAIL: baseline regressed against itself",
              file=sys.stderr)
        return EXIT_SELFTEST
    degraded = _degrade(baseline)
    failures = check_regressions(baseline, degraded)
    if len(failures) != len(GATED_METRICS):
        print(f"SELFTEST FAIL: degraded report tripped only "
              f"{len(failures)}/{len(GATED_METRICS)} gates: "
              f"{[f.metric for f in failures]}", file=sys.stderr)
        return EXIT_SELFTEST
    attribution = _write_attribution(args.attribution_out, baseline,
                                     degraded, failures)
    has_stages = isinstance(baseline.get("loadgen", {}), dict) and \
        isinstance(baseline["loadgen"].get("stage_time_us"), dict)
    if has_stages and attribution["blame"] != _SELFTEST_STAGE:
        print(f"SELFTEST FAIL: attribution blamed "
              f"{attribution['blame']!r}, expected "
              f"{_SELFTEST_STAGE!r} (the injected stage)", file=sys.stderr)
        return EXIT_SELFTEST
    print(f"OK: gate fires on an injected regression "
          f"({len(failures)}/{len(GATED_METRICS)} gates tripped), "
          "passes the baseline against itself, and the attribution "
          f"artifact ({args.attribution_out}) "
          + (f"blames the injected {_SELFTEST_STAGE!r} stage" if has_stages
             else "degrades gracefully without stage data"))
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python tools/bench_history.py",
        description="Append bench_serving reports to BENCH_history.jsonl "
                    "and gate CI on regressions in the deterministic "
                    "loadgen metrics.",
        epilog="Exit codes: 0 ok, 1 regression, 2 usage, "
               "3 selftest found the gate broken.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ap = sub.add_parser("append", help="append one labeled snapshot")
    ap.add_argument("--report", type=Path,
                    default=REPO_ROOT / "BENCH_serving.json",
                    help="bench_serving --json report to snapshot")
    ap.add_argument("--history", type=Path,
                    default=REPO_ROOT / "BENCH_history.jsonl",
                    help="JSONL history file to append to")
    ap.add_argument("--label", required=True,
                    help="caller-supplied label (git SHA, CI run id)")
    ap.set_defaults(fn=cmd_append)

    cp = sub.add_parser("check", help="gate a report against the baseline")
    cp.add_argument("--baseline", type=Path,
                    default=REPO_ROOT / "BENCH_serving.json",
                    help="committed baseline report")
    cp.add_argument("--current", type=Path, required=True,
                    help="freshly generated report to gate")
    cp.add_argument("--attribution-out", type=Path, default=None,
                    help="on failure, write the stage-attribution "
                         "artifact (which stage regressed) here")
    cp.set_defaults(fn=cmd_check)

    sp = sub.add_parser("selftest",
                        help="prove the gate fires on an injected "
                             "regression")
    sp.add_argument("--baseline", type=Path,
                    default=REPO_ROOT / "BENCH_serving.json",
                    help="report to degrade and re-check")
    sp.add_argument("--attribution-out", type=Path,
                    default=Path("/tmp/bench_history_selftest_attr.json"),
                    help="where the selftest writes (and then checks) "
                         "the attribution artifact")
    sp.set_defaults(fn=cmd_selftest)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
