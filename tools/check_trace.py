#!/usr/bin/env python
"""Validate a Chrome trace + Prometheus exposition produced by the CLI.

Usage::

    python tools/check_trace.py trace.json metrics.prom

Checks (the CI trace-smoke step runs this against a ``loadgen`` run):

- the trace is valid ``trace_event`` JSON: a ``traceEvents`` list whose
  events carry ``name``/``ph``/``pid``/``tid`` (and ``ts``/``dur`` for
  complete events), i.e. it loads in chrome://tracing and Perfetto;
- every completed request has the full span chain
  request → queue_wait/service → layer → kernel, each span nested inside
  its parent's time window, and a matching ``batch`` span exists;
- kernel spans carry the Fig. 11/12 profiling counters
  (``gld_transactions``, ``gst_transactions``, ``sm_efficiency``,
  ``achieved_gbs``);
- counter tracks exist for queue depth and achieved GB/s;
- the metrics file parses as Prometheus text exposition (0.0.4) and
  contains every required series.

Exit codes identify which contract broke (CI log triage):

- ``0`` — both artifacts pass every check;
- ``2`` — usage error (argparse);
- ``3`` — the Chrome trace failed structural validation;
- ``4`` — the Prometheus exposition failed validation;
- ``5`` — both artifacts failed.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

EXIT_OK = 0
EXIT_TRACE = 3
EXIT_METRICS = 4
EXIT_BOTH = 5

REQUIRED_KERNEL_ARGS = ("gld_transactions", "gst_transactions",
                        "sm_efficiency", "achieved_gbs")
REQUIRED_METRICS = (
    "repro_requests_completed_total",
    "repro_requests_rejected_total",
    "repro_latency_us",
    "repro_throughput_seq_s",
    "repro_window_latency_us",
    "repro_throughput_ewma_seq_s",
    "repro_batch_size_bucket",
)

_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"               # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""    # first label
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"  # more labels
    r" -?[0-9.eE+-]+(e[+-][0-9]+)?$")
_HEADER_RE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")


def _inside(child: dict, parent: dict, tol: float = 1e-6) -> bool:
    """Whether a complete event's window nests inside another's."""
    c0, c1 = child["ts"], child["ts"] + child.get("dur", 0.0)
    p0, p1 = parent["ts"], parent["ts"] + parent.get("dur", 0.0)
    return c0 >= p0 - tol and c1 <= p1 + tol


def check_trace(path: str, errors: list[str]) -> None:
    """Structural checks on one Chrome ``trace_event`` JSON file."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        errors.append(f"trace: cannot load {path}: {e}")
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        errors.append("trace: traceEvents missing or empty")
        return
    for i, ev in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                errors.append(f"trace: event {i} lacks {key!r}")
                return
        if ev["ph"] == "X" and ("ts" not in ev or "dur" not in ev):
            errors.append(f"trace: complete event {i} lacks ts/dur")
            return

    xs = [e for e in events if e["ph"] == "X"]
    requests = [e for e in xs if e.get("cat") == "request"]
    batches = {e["args"].get("batch_id"): e for e in xs
               if e.get("cat") == "batch"}
    counters = {e["name"] for e in events if e["ph"] == "C"}
    if not requests:
        errors.append("trace: no request spans")
        return
    served = [e for e in requests if e["args"].get("status") == "ok"]
    if not served:
        errors.append("trace: no served request spans")
        return
    by_track: dict[tuple, list[dict]] = {}
    for e in xs:
        by_track.setdefault((e["pid"], e["tid"]), []).append(e)
    for req in served:
        rid = req["args"].get("rid")
        track = by_track[(req["pid"], req["tid"])]
        kinds = {e.get("cat") for e in track if _inside(e, req)}
        missing = {"phase", "layer", "kernel"} - kinds
        if missing:
            errors.append(f"trace: request {rid} chain lacks {missing}")
            continue
        names = {e["name"] for e in track if e.get("cat") == "phase"
                 and _inside(e, req)}
        if not {"queue_wait", "service"} <= names:
            errors.append(f"trace: request {rid} lacks queue_wait/service "
                          f"phases (got {sorted(names)})")
        bid = req["args"].get("batch_id")
        if bid not in batches:
            errors.append(f"trace: request {rid} references missing "
                          f"batch {bid}")
        for kern in (e for e in track if e.get("cat") == "kernel"
                     and _inside(e, req)):
            lacking = [a for a in REQUIRED_KERNEL_ARGS
                       if a not in kern.get("args", {})]
            if lacking:
                errors.append(f"trace: kernel {kern['name']} of request "
                              f"{rid} lacks counters {lacking}")
                break
    for track_name in ("queue_depth", "achieved_gbs"):
        if track_name not in counters:
            errors.append(f"trace: no {track_name!r} counter track")
    print(f"trace: {len(requests)} request spans ({len(served)} served), "
          f"{len(batches)} batches, counter tracks: {sorted(counters)}")


def check_metrics(path: str, errors: list[str]) -> None:
    """Line-level validation of one Prometheus text-exposition file."""
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        errors.append(f"metrics: cannot read {path}: {e}")
        return
    names = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("#"):
            if not _HEADER_RE.match(line):
                errors.append(f"metrics: bad header line {lineno}: {line!r}")
            continue
        if not _SAMPLE_RE.match(line):
            errors.append(f"metrics: bad sample line {lineno}: {line!r}")
            continue
        names.add(re.split(r"[{ ]", line, maxsplit=1)[0])
    for required in REQUIRED_METRICS:
        if required not in names:
            errors.append(f"metrics: series {required!r} missing")
    print(f"metrics: {len(names)} series validated")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python tools/check_trace.py",
        description="Validate a Chrome trace_event JSON file and a "
                    "Prometheus text-exposition file produced by "
                    "'python -m repro loadgen/serve'.",
        epilog="Exit codes: 0 ok, 2 usage, 3 trace invalid, "
               "4 metrics invalid, 5 both invalid.",
    )
    parser.add_argument(
        "trace",
        help="Chrome trace_event JSON (from --trace-out); checked for "
             "span-chain completeness and Fig. 11/12 kernel counters")
    parser.add_argument(
        "metrics",
        help="Prometheus 0.0.4 text exposition (from --metrics-out); "
             "checked line-by-line and for required series")
    return parser


def main(argv: list[str]) -> int:
    args = build_parser().parse_args(argv)
    trace_errors: list[str] = []
    metrics_errors: list[str] = []
    check_trace(args.trace, trace_errors)
    check_metrics(args.metrics, metrics_errors)
    for err in trace_errors + metrics_errors:
        print(f"FAIL: {err}", file=sys.stderr)
    if trace_errors and metrics_errors:
        return EXIT_BOTH
    if trace_errors:
        return EXIT_TRACE
    if metrics_errors:
        return EXIT_METRICS
    print("OK: trace and metrics pass all checks")
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
