#!/usr/bin/env python
"""Validate a Chrome trace + Prometheus exposition produced by the CLI.

Usage::

    python tools/check_trace.py trace.json metrics.prom [events.jsonl]

Checks (the CI trace-smoke step runs this against a ``loadgen`` run):

- the trace is valid ``trace_event`` JSON: a ``traceEvents`` list whose
  events carry ``name``/``ph``/``pid``/``tid`` (and ``ts``/``dur`` for
  complete events), i.e. it loads in chrome://tracing and Perfetto;
- every completed request has the full span chain
  request → queue_wait/service → layer → kernel, each span nested inside
  its parent's time window, and a matching ``batch`` span exists;
- kernel spans carry the Fig. 11/12 profiling counters
  (``gld_transactions``, ``gst_transactions``, ``sm_efficiency``,
  ``achieved_gbs``);
- counter tracks exist for queue depth and achieved GB/s;
- the metrics file parses as Prometheus text exposition (0.0.4) and
  contains every required series;
- the (optional) flight-recorder event log parses as JSONL, every
  object's keys are known schema fields, every kind is a known kind,
  lines are in canonical virtual-time order (globally sorted, per-rid
  nondecreasing timestamps), and every admitted rid reaches exactly one
  terminal event (complete / reject / quota_reject);
- waterfall invariants: every completed rid reconstructs to a stage
  waterfall whose stages are contiguous, non-negative, and partition the
  measured latency (complete − admit) exactly, and the Little's-law
  cross-check (time-integrated queue depth vs λ·W) has ~zero residual.

Exit codes identify which contract broke (CI log triage):

- ``0`` — every artifact passes every check;
- ``2`` — usage error (argparse);
- ``3`` — the Chrome trace failed structural validation;
- ``4`` — the Prometheus exposition failed validation;
- ``5`` — more than one artifact failed;
- ``6`` — the event log failed validation.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.obs.critical_path import (  # noqa: E402
    STAGES,
    build_waterfalls,
    littles_law,
)
from repro.obs.events import (  # noqa: E402
    EVENT_FIELDS,
    EVENT_KINDS,
    TERMINAL_KINDS,
    Event,
)

EXIT_OK = 0
EXIT_TRACE = 3
EXIT_METRICS = 4
EXIT_BOTH = 5
EXIT_EVENTS = 6

REQUIRED_KERNEL_ARGS = ("gld_transactions", "gst_transactions",
                        "sm_efficiency", "achieved_gbs")
REQUIRED_METRICS = (
    "repro_requests_completed_total",
    "repro_requests_rejected_total",
    "repro_latency_us",
    "repro_throughput_seq_s",
    "repro_window_latency_us",
    "repro_throughput_ewma_seq_s",
    "repro_batch_size_bucket",
)

_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"               # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""    # first label
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"  # more labels
    r" -?[0-9.eE+-]+(e[+-][0-9]+)?$")
_HEADER_RE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")


def _inside(child: dict, parent: dict, tol: float = 1e-6) -> bool:
    """Whether a complete event's window nests inside another's."""
    c0, c1 = child["ts"], child["ts"] + child.get("dur", 0.0)
    p0, p1 = parent["ts"], parent["ts"] + parent.get("dur", 0.0)
    return c0 >= p0 - tol and c1 <= p1 + tol


def check_trace(path: str, errors: list[str]) -> None:
    """Structural checks on one Chrome ``trace_event`` JSON file."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        errors.append(f"trace: cannot load {path}: {e}")
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        errors.append("trace: traceEvents missing or empty")
        return
    for i, ev in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                errors.append(f"trace: event {i} lacks {key!r}")
                return
        if ev["ph"] == "X" and ("ts" not in ev or "dur" not in ev):
            errors.append(f"trace: complete event {i} lacks ts/dur")
            return

    xs = [e for e in events if e["ph"] == "X"]
    requests = [e for e in xs if e.get("cat") == "request"]
    batches = {e["args"].get("batch_id"): e for e in xs
               if e.get("cat") == "batch"}
    counters = {e["name"] for e in events if e["ph"] == "C"}
    if not requests:
        errors.append("trace: no request spans")
        return
    served = [e for e in requests if e["args"].get("status") == "ok"]
    if not served:
        errors.append("trace: no served request spans")
        return
    by_track: dict[tuple, list[dict]] = {}
    for e in xs:
        by_track.setdefault((e["pid"], e["tid"]), []).append(e)
    for req in served:
        rid = req["args"].get("rid")
        track = by_track[(req["pid"], req["tid"])]
        kinds = {e.get("cat") for e in track if _inside(e, req)}
        missing = {"phase", "layer", "kernel"} - kinds
        if missing:
            errors.append(f"trace: request {rid} chain lacks {missing}")
            continue
        names = {e["name"] for e in track if e.get("cat") == "phase"
                 and _inside(e, req)}
        if not {"queue_wait", "service"} <= names:
            errors.append(f"trace: request {rid} lacks queue_wait/service "
                          f"phases (got {sorted(names)})")
        bid = req["args"].get("batch_id")
        if bid not in batches:
            errors.append(f"trace: request {rid} references missing "
                          f"batch {bid}")
        for kern in (e for e in track if e.get("cat") == "kernel"
                     and _inside(e, req)):
            lacking = [a for a in REQUIRED_KERNEL_ARGS
                       if a not in kern.get("args", {})]
            if lacking:
                errors.append(f"trace: kernel {kern['name']} of request "
                              f"{rid} lacks counters {lacking}")
                break
    for track_name in ("queue_depth", "achieved_gbs"):
        if track_name not in counters:
            errors.append(f"trace: no {track_name!r} counter track")
    print(f"trace: {len(requests)} request spans ({len(served)} served), "
          f"{len(batches)} batches, counter tracks: {sorted(counters)}")


def check_metrics(path: str, errors: list[str]) -> None:
    """Line-level validation of one Prometheus text-exposition file."""
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        errors.append(f"metrics: cannot read {path}: {e}")
        return
    names = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("#"):
            if not _HEADER_RE.match(line):
                errors.append(f"metrics: bad header line {lineno}: {line!r}")
            continue
        if not _SAMPLE_RE.match(line):
            errors.append(f"metrics: bad sample line {lineno}: {line!r}")
            continue
        names.add(re.split(r"[{ ]", line, maxsplit=1)[0])
    for required in REQUIRED_METRICS:
        if required not in names:
            errors.append(f"metrics: series {required!r} missing")
    print(f"metrics: {len(names)} series validated")


def check_events(path: str, errors: list[str]) -> None:
    """Schema + lifecycle validation of one flight-recorder JSONL log."""
    n_prior_errors = len(errors)
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        errors.append(f"events: cannot read {path}: {e}")
        return
    known_fields = set(EVENT_FIELDS)
    events: list[dict] = []
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            errors.append(f"events: blank line {lineno} (canonical JSONL "
                          "has no blank lines)")
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"events: line {lineno} is not JSON: {e}")
            return
        if not isinstance(obj, dict):
            errors.append(f"events: line {lineno} is not an object")
            return
        unknown = set(obj) - known_fields
        if unknown:
            errors.append(f"events: line {lineno} has unknown fields "
                          f"{sorted(unknown)}")
        if "ts_us" not in obj or "kind" not in obj:
            errors.append(f"events: line {lineno} lacks ts_us/kind")
            return
        if obj["kind"] not in EVENT_KINDS:
            errors.append(f"events: line {lineno} has unknown kind "
                          f"{obj['kind']!r}")
            return
        events.append(obj)
    if not events:
        errors.append("events: no events")
        return

    # Canonical order: the file must be globally sorted by the schema's
    # virtual-time key, which implies per-rid nondecreasing timestamps.
    def key(obj: dict) -> tuple:
        return Event(ts_us=obj["ts_us"], kind=obj["kind"],
                     rid=obj.get("rid"),
                     batch_id=obj.get("batch_id")).sort_key()

    keys = [key(obj) for obj in events]
    for i in range(1, len(keys)):
        if keys[i] < keys[i - 1]:
            errors.append(f"events: line {i + 1} out of canonical order "
                          f"({keys[i]} after {keys[i - 1]})")
            break
    last_ts: dict[int, float] = {}
    for lineno, obj in enumerate(events, 1):
        rid = obj.get("rid")
        if rid is None:
            continue
        if obj["ts_us"] < last_ts.get(rid, float("-inf")):
            errors.append(f"events: line {lineno} rid {rid} timestamp "
                          "went backwards")
            break
        last_ts[rid] = obj["ts_us"]

    # Lifecycle: every admitted rid reaches exactly one terminal event.
    admitted = {obj["rid"] for obj in events
                if obj["kind"] == "admit" and "rid" in obj}
    terminals: dict[int, int] = {}
    for obj in events:
        if obj["kind"] in TERMINAL_KINDS and "rid" in obj:
            terminals[obj["rid"]] = terminals.get(obj["rid"], 0) + 1
    unterminated = sorted(admitted - set(terminals))
    if unterminated:
        errors.append(f"events: admitted rids never terminated: "
                      f"{unterminated[:10]}"
                      + (" ..." if len(unterminated) > 10 else ""))
    multi = sorted(r for r, n in terminals.items() if n > 1)
    if multi:
        errors.append(f"events: rids with multiple terminal events: "
                      f"{multi[:10]}")
    unadmitted = sorted(set(terminals) - admitted)
    if unadmitted:
        errors.append(f"events: terminal events for never-admitted rids: "
                      f"{unadmitted[:10]}")

    # Waterfall invariants: the per-request stages reconstructed by the
    # attribution layer must be non-negative and partition each completed
    # rid's measured latency exactly, and Little's law must reconcile.
    # Only meaningful over a structurally valid log — skip if the schema
    # or lifecycle checks above already failed.
    if len(errors) > n_prior_errors:
        return
    typed = [Event(ts_us=float(obj["ts_us"]), kind=obj["kind"],
                   **{k: v for k, v in obj.items()
                      if k not in ("ts_us", "kind")})
             for obj in events]
    completed = {obj["rid"] for obj in events
                 if obj["kind"] == "complete" and "rid" in obj}
    waterfalls = build_waterfalls(typed)
    if len(waterfalls) != len(completed):
        missing = sorted(completed - {w.rid for w in waterfalls})
        errors.append(f"events: completed rids with no reconstructable "
                      f"waterfall: {missing[:10]}")
    for w in waterfalls:
        partition = sum(w.stages[s] for s in STAGES)
        if abs(partition - w.latency_us) > 1e-6:
            errors.append(
                f"events: rid {w.rid} stages sum to {partition} but "
                f"latency is {w.latency_us} (waterfall must partition "
                "measured latency exactly)")
            break
        negative = [s for s in STAGES if w.stages[s] < -1e-9]
        if negative:
            errors.append(f"events: rid {w.rid} has negative stage "
                          f"durations {negative}")
            break
    law = littles_law(typed)
    if abs(law["residual"]) > 1e-6 * max(1.0, law["mean_queue_depth"]):
        errors.append(f"events: Little's-law residual {law['residual']} "
                      f"(L={law['mean_queue_depth']} vs "
                      f"λW={law['product_depth']})")
    kinds = sorted({obj["kind"] for obj in events})
    print(f"events: {len(events)} events, {len(admitted)} admitted rids, "
          f"{len(waterfalls)} waterfalls partition latency exactly, "
          f"Little's-law residual {law['residual']:g}, kinds: {kinds}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python tools/check_trace.py",
        description="Validate a Chrome trace_event JSON file and a "
                    "Prometheus text-exposition file produced by "
                    "'python -m repro loadgen/serve'.",
        epilog="Exit codes: 0 ok, 2 usage, 3 trace invalid, "
               "4 metrics invalid, 5 several invalid, 6 events invalid.",
    )
    parser.add_argument(
        "trace",
        help="Chrome trace_event JSON (from --trace-out); checked for "
             "span-chain completeness and Fig. 11/12 kernel counters")
    parser.add_argument(
        "metrics",
        help="Prometheus 0.0.4 text exposition (from --metrics-out); "
             "checked line-by-line and for required series")
    parser.add_argument(
        "events", nargs="?", default=None,
        help="flight-recorder JSONL event log (from --events-out); "
             "checked for schema, canonical ordering, and terminal "
             "reachability of every admitted rid")
    return parser


def main(argv: list[str]) -> int:
    args = build_parser().parse_args(argv)
    trace_errors: list[str] = []
    metrics_errors: list[str] = []
    events_errors: list[str] = []
    check_trace(args.trace, trace_errors)
    check_metrics(args.metrics, metrics_errors)
    if args.events is not None:
        check_events(args.events, events_errors)
    for err in trace_errors + metrics_errors + events_errors:
        print(f"FAIL: {err}", file=sys.stderr)
    failed = [bool(trace_errors), bool(metrics_errors), bool(events_errors)]
    if sum(failed) > 1:
        return EXIT_BOTH
    if trace_errors:
        return EXIT_TRACE
    if metrics_errors:
        return EXIT_METRICS
    if events_errors:
        return EXIT_EVENTS
    print("OK: all artifacts pass every check")
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
