#!/usr/bin/env python
"""Validate a Chrome trace + Prometheus exposition produced by the CLI.

Usage::

    python tools/check_trace.py trace.json metrics.prom

Checks (the CI trace-smoke step runs this against a ``loadgen`` run):

- the trace is valid ``trace_event`` JSON: a ``traceEvents`` list whose
  events carry ``name``/``ph``/``pid``/``tid`` (and ``ts``/``dur`` for
  complete events), i.e. it loads in chrome://tracing and Perfetto;
- every completed request has the full span chain
  request → queue_wait/service → layer → kernel, each span nested inside
  its parent's time window, and a matching ``batch`` span exists;
- kernel spans carry the Fig. 11/12 profiling counters
  (``gld_transactions``, ``gst_transactions``, ``sm_efficiency``,
  ``achieved_gbs``);
- counter tracks exist for queue depth and achieved GB/s;
- the metrics file parses as Prometheus text exposition (0.0.4) and
  contains every required series.

Exits non-zero with a message per failed check.
"""

from __future__ import annotations

import json
import re
import sys

REQUIRED_KERNEL_ARGS = ("gld_transactions", "gst_transactions",
                        "sm_efficiency", "achieved_gbs")
REQUIRED_METRICS = (
    "repro_requests_completed_total",
    "repro_requests_rejected_total",
    "repro_latency_us",
    "repro_throughput_seq_s",
    "repro_window_latency_us",
    "repro_throughput_ewma_seq_s",
    "repro_batch_size_bucket",
)

_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"               # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""    # first label
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"  # more labels
    r" -?[0-9.eE+-]+(e[+-][0-9]+)?$")
_HEADER_RE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")


def _inside(child: dict, parent: dict, tol: float = 1e-6) -> bool:
    """Whether a complete event's window nests inside another's."""
    c0, c1 = child["ts"], child["ts"] + child.get("dur", 0.0)
    p0, p1 = parent["ts"], parent["ts"] + parent.get("dur", 0.0)
    return c0 >= p0 - tol and c1 <= p1 + tol


def check_trace(path: str, errors: list[str]) -> None:
    """Structural checks on one Chrome ``trace_event`` JSON file."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        errors.append(f"trace: cannot load {path}: {e}")
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        errors.append("trace: traceEvents missing or empty")
        return
    for i, ev in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                errors.append(f"trace: event {i} lacks {key!r}")
                return
        if ev["ph"] == "X" and ("ts" not in ev or "dur" not in ev):
            errors.append(f"trace: complete event {i} lacks ts/dur")
            return

    xs = [e for e in events if e["ph"] == "X"]
    requests = [e for e in xs if e.get("cat") == "request"]
    batches = {e["args"].get("batch_id"): e for e in xs
               if e.get("cat") == "batch"}
    counters = {e["name"] for e in events if e["ph"] == "C"}
    if not requests:
        errors.append("trace: no request spans")
        return
    served = [e for e in requests if e["args"].get("status") == "ok"]
    if not served:
        errors.append("trace: no served request spans")
        return
    by_track: dict[tuple, list[dict]] = {}
    for e in xs:
        by_track.setdefault((e["pid"], e["tid"]), []).append(e)
    for req in served:
        rid = req["args"].get("rid")
        track = by_track[(req["pid"], req["tid"])]
        kinds = {e.get("cat") for e in track if _inside(e, req)}
        missing = {"phase", "layer", "kernel"} - kinds
        if missing:
            errors.append(f"trace: request {rid} chain lacks {missing}")
            continue
        names = {e["name"] for e in track if e.get("cat") == "phase"
                 and _inside(e, req)}
        if not {"queue_wait", "service"} <= names:
            errors.append(f"trace: request {rid} lacks queue_wait/service "
                          f"phases (got {sorted(names)})")
        bid = req["args"].get("batch_id")
        if bid not in batches:
            errors.append(f"trace: request {rid} references missing "
                          f"batch {bid}")
        for kern in (e for e in track if e.get("cat") == "kernel"
                     and _inside(e, req)):
            lacking = [a for a in REQUIRED_KERNEL_ARGS
                       if a not in kern.get("args", {})]
            if lacking:
                errors.append(f"trace: kernel {kern['name']} of request "
                              f"{rid} lacks counters {lacking}")
                break
    for track_name in ("queue_depth", "achieved_gbs"):
        if track_name not in counters:
            errors.append(f"trace: no {track_name!r} counter track")
    print(f"trace: {len(requests)} request spans ({len(served)} served), "
          f"{len(batches)} batches, counter tracks: {sorted(counters)}")


def check_metrics(path: str, errors: list[str]) -> None:
    """Line-level validation of one Prometheus text-exposition file."""
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        errors.append(f"metrics: cannot read {path}: {e}")
        return
    names = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("#"):
            if not _HEADER_RE.match(line):
                errors.append(f"metrics: bad header line {lineno}: {line!r}")
            continue
        if not _SAMPLE_RE.match(line):
            errors.append(f"metrics: bad sample line {lineno}: {line!r}")
            continue
        names.add(re.split(r"[{ ]", line, maxsplit=1)[0])
    for required in REQUIRED_METRICS:
        if required not in names:
            errors.append(f"metrics: series {required!r} missing")
    print(f"metrics: {len(names)} series validated")


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    errors: list[str] = []
    check_trace(argv[0], errors)
    check_metrics(argv[1], errors)
    for err in errors:
        print(f"FAIL: {err}", file=sys.stderr)
    if not errors:
        print("OK: trace and metrics pass all checks")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
