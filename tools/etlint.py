#!/usr/bin/env python
"""Standalone entry point for the etlint static-analysis subsystem.

Equivalent to ``python -m repro.analysis``; exists so the linter can run
without configuring ``PYTHONPATH`` first::

    python tools/etlint.py src --format=text

See ``--list-rules`` for the rule catalogue and DESIGN.md §9 for the
invariant each rule encodes.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.__main__ import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
