"""Setup shim for offline editable installs.

The canonical metadata lives in pyproject.toml. This file exists so that
environments without the `wheel` package (which modern `pip install -e .`
needs for PEP 660 editable wheels) can still do an editable install via
`python setup.py develop`.
"""

from setuptools import setup

setup()
