"""One GLUE task through all four pruning methods (a Table 1 column).

Fine-tunes a DistilBERT-sim baseline on a synthetic GLUE task, then runs the
irregular / column / tile / attention-aware pipelines at the Table 1 ratio
for that task, reporting the dev score (reduced scale) and the paper-scale
V100S latency.

Run:  python examples/glue_pipeline.py [--task SST-2]
"""

import argparse

from repro.data import GLUE_TASKS, make_task
from repro.eval.accuracy_exp import (
    SMALL,
    TABLE1_RATIOS,
    TASK_ORDER,
    _full_model_latency_ms,
    _score,
    finetune_dense,
    prune_finetuned,
)
from repro.pruning import PruneMethod


def main(task_name: str, model_name: str = "DistilBERT") -> None:
    task = GLUE_TASKS[task_name]
    print(f"== {task_name} ({task.metric}) on {model_name}-sim ==")
    td = make_task(task_name, vocab_size=SMALL.vocab_size,
                   seq_len=SMALL.seq_len, n_train=SMALL.n_train,
                   n_dev=SMALL.n_dev, seed=0)

    baseline = finetune_dense(td, model_name, SMALL)
    base_score = _score(baseline, td)
    base_ms = _full_model_latency_ms(model_name, PruneMethod.NONE, 0.0)
    print(f"   dense baseline: score {base_score:.3f}, "
          f"latency {base_ms:.2f} ms (full {model_name}, V100S model)")

    idx = TASK_ORDER.index(task_name)
    for method in (PruneMethod.IRREGULAR, PruneMethod.COLUMN,
                   PruneMethod.TILE, PruneMethod.ATTENTION_AWARE):
        ratio = TABLE1_RATIOS[model_name][method][idx]
        score, sp = prune_finetuned(baseline, td, method, ratio, SMALL)
        ms = _full_model_latency_ms(model_name, method, ratio)
        print(f"   {method.value:16s} ratio {ratio:.0%}  "
              f"score {score:.3f} ({score / max(base_score, 1e-9):.0%} of "
              f"baseline)  latency {ms:7.2f} ms")


if __name__ == "__main__":
    ap = argparse.ArgumentParser()
    ap.add_argument("--task", default="SST-2", choices=sorted(GLUE_TASKS))
    ap.add_argument("--model", default="DistilBERT",
                    choices=["BERT_BASE", "DistilBERT"])
    args = ap.parse_args()
    main(args.task, args.model)
