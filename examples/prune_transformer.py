"""Train → reweighted-regularize → prune → retrain → deploy.

The full Section 4.2 pipeline on the WikiText-2-like language-modeling task:

1. pre-train a small Transformer LM on the synthetic corpus,
2. run reweighted group-lasso training (β refreshed at milestones),
3. tensor-tile prune with the attention-aware per-matrix plan,
4. masked-retrain the surviving weights,
5. extract the weights into the E.T. engine and compare engines at the
   paper-scale Transformer shapes (L=2, d_model=800, H=4).

Run:  python examples/prune_transformer.py  [--ratio 0.7]
"""

import argparse

import numpy as np

from repro.config import TRANSFORMER_WT2, small_config
from repro.data import SyntheticWikiText, batchify
from repro.nn import TrainConfig, Trainer, TransformerLM
from repro.pruning import PruneMethod, ReweightedGroupLasso, prune_model
from repro.runtime import EncoderWeights, ETEngine, TensorRTLikeEngine


def main(ratio: float) -> None:
    cfg = small_config(name="wt2-sim", num_layers=2, d_model=64, num_heads=4,
                       vocab_size=256, max_seq_len=64)
    corpus = SyntheticWikiText(vocab_size=cfg.vocab_size, seed=0)
    train_stream, val_stream = corpus.splits(12_000, 3_000)
    train_b = batchify(train_stream, batch_size=16, seq_len=24)
    val_b = batchify(val_stream, batch_size=16, seq_len=24)

    def val_acc(m):
        return float(np.mean([m.accuracy(b) for b in val_b]))

    print("== 1. pre-train the dense baseline ==")
    model = TransformerLM(cfg, np.random.default_rng(0))
    res = Trainer(model, TrainConfig(epochs=6, lr=2e-3)).fit_lm(train_b)
    print(f"   loss {res.losses[0]:.3f} -> {res.final_loss:.3f}, "
          f"next-word acc {val_acc(model):.3f} "
          f"(bigram ceiling ~{corpus.bigram_ceiling():.3f})")

    print(f"== 2. reweighted group-lasso training (λ=1e-4) ==")
    reg = ReweightedGroupLasso(lam=1e-4, tile=(8, 8), milestones=(0, 1))
    Trainer(model, TrainConfig(epochs=2, lr=1e-3),
            regularizer=reg.penalty,
            epoch_callback=reg.update_betas).fit_lm(train_b)

    print(f"== 3. attention-aware pruning at {ratio:.0%} ==")
    summary = prune_model(model, PruneMethod.ATTENTION_AWARE, ratio,
                          tile=(8, 8))
    print(f"   overall sparsity {summary.overall_sparsity:.2%}")
    print(f"   roles: " + ", ".join(
        f"{k.split('.')[-2]}={v.value}"
        for k, v in list(summary.roles.items())[:6]))
    print(f"   accuracy right after pruning: {val_acc(model):.3f}")

    print("== 4. masked retraining ==")
    Trainer(model, TrainConfig(epochs=4, lr=1e-3)).fit_lm(train_b)
    print(f"   recovered accuracy: {val_acc(model):.3f}")

    print("== 5. deploy at paper scale (L=2, d_model=800, H=4, s=128) ==")
    # Latency experiments only need shapes + the pruning pattern; apply the
    # same method/ratio to paper-scale weights.
    w = EncoderWeights.random(TRANSFORMER_WT2, np.random.default_rng(0))
    w.prune(PruneMethod.ATTENTION_AWARE, ratio)
    et = ETEngine(w)
    trt = TensorRTLikeEngine(w)
    t_et = et.latency_us(128)
    t_trt = trt.latency_us(128)
    print(f"   E.T.      {t_et:8.1f} us")
    print(f"   TensorRT  {t_trt:8.1f} us   ({t_trt / t_et:.2f}x slower)")


if __name__ == "__main__":
    ap = argparse.ArgumentParser()
    ap.add_argument("--ratio", type=float, default=0.7,
                    help="pruning ratio (fraction removed)")
    main(ap.parse_args().ratio)
