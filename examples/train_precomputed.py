"""E.T. for training (Section 7): learn the folded W_V·W_O directly.

The paper's future-work discussion: the pre-computed architecture has no
separate W_V and W_O — backprop through ``Σ_h S_h·(X·M_h)`` updates the
per-head folded matrix M_h directly ("the backward propagation phase will
use autograd to automatically update this new matrix as opposed to prior
ones"). This example trains a standard LM and a folded LM side by side on
the synthetic WikiText-2 corpus and shows they reach comparable accuracy.

Run:  python examples/train_precomputed.py
"""

import numpy as np

from repro.config import small_config
from repro.data import SyntheticWikiText, batchify
from repro.nn import TrainConfig, Trainer, TransformerLM


def main() -> None:
    cfg = small_config(name="s7", num_layers=2, d_model=48, num_heads=4,
                       vocab_size=192, max_seq_len=64)
    corpus = SyntheticWikiText(vocab_size=cfg.vocab_size, seed=1)
    train_s, val_s = corpus.splits(10_000, 2_500)
    train_b = batchify(train_s, 16, 20)
    val_b = batchify(val_s, 16, 20)

    def val_acc(m):
        return float(np.mean([m.accuracy(b) for b in val_b]))

    results = {}
    for label, precomputed in (("standard (W_V, W_O)", False),
                               ("pre-computed (folded M)", True)):
        model = TransformerLM(cfg, np.random.default_rng(0),
                              precomputed=precomputed)
        res = Trainer(model, TrainConfig(epochs=8, lr=2e-3)).fit_lm(train_b)
        acc = val_acc(model)
        n_params = model.num_parameters()
        results[label] = acc
        print(f"{label:26s} loss {res.losses[0]:.3f} -> {res.final_loss:.3f}  "
              f"val acc {acc:.3f}  ({n_params:,} params)")

    gap = abs(results["standard (W_V, W_O)"]
              - results["pre-computed (folded M)"])
    print(f"\naccuracy gap: {gap:.3f} — the folded architecture trains "
          f"end-to-end as Section 7 predicts")


if __name__ == "__main__":
    main()
