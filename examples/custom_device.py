"""Run the E.T. experiment stack on a user-defined GPU model.

Section 7 argues the pruning and on-the-fly designs port to other
fixed-function accelerators. The device model is just data — define your
own :class:`~repro.gpu.DeviceSpec` and every engine, figure harness and
counter works against it. This example compares the V100S, the built-in
A100, and a hypothetical bandwidth-starved edge device.

Run:  python examples/custom_device.py
"""

import numpy as np

from repro.config import BERT_BASE
from repro.gpu import A100, V100S, DeviceSpec
from repro.pruning import PruneMethod
from repro.runtime import EncoderWeights, ETEngine, TensorRTLikeEngine

# A hypothetical edge accelerator: a quarter of the SMs, LPDDR-class
# bandwidth, slower launches — the regime where E.T.'s store savings and
# kernel-count reduction matter even more.
EDGE = DeviceSpec(
    name="EdgeTC-20",
    num_sms=20,
    smem_per_sm_bytes=96 * 1024,
    peak_bw_gbs=200.0,
    peak_tc_tflops=32.0,
    peak_fp32_tflops=4.0,
    launch_overhead_us=6.0,
    sync_overhead_us=6.0,
)


def main() -> None:
    rng = np.random.default_rng(0)
    x = rng.standard_normal((128, BERT_BASE.d_model))
    dense = EncoderWeights.random(BERT_BASE, rng, num_layers=1)
    pruned = EncoderWeights.random(BERT_BASE, np.random.default_rng(1), 1)
    pruned.prune(PruneMethod.ATTENTION_AWARE, 0.9)

    print(f"{'device':>10} {'TensorRT us':>12} {'E.T.@90% us':>12} "
          f"{'speedup':>8} {'E.T. attention':>15}")
    for dev in (V100S, A100, EDGE):
        trt = TensorRTLikeEngine(dense, dev).run(x)
        et = ETEngine(pruned, dev).run(x)
        print(f"{dev.name:>10} {trt.latency_us:12.1f} {et.latency_us:12.1f} "
              f"{trt.latency_us / et.latency_us:8.2f} "
              f"{et.choices['layer0.attention']:>15}")

    print("\nEquation 6 shared-memory check on each device (seqLen 384):")
    from repro.attention import otf_smem_bytes

    need = otf_smem_bytes(384, BERT_BASE.d_head)
    for dev in (V100S, A100, EDGE):
        fits = "fits" if need <= dev.smem_per_sm_bytes else "DOES NOT FIT"
        print(f"  {dev.name}: need {need // 1024} KB of "
              f"{dev.smem_per_sm_bytes // 1024} KB -> {fits}")


if __name__ == "__main__":
    main()
