"""Quickstart: run one BERT_BASE encoder layer on every engine.

Builds random encoder weights at the paper's BERT_BASE shapes, runs the same
input through the PyTorch-like, TensorRT-like, FasterTransformer-like and
E.T. engines, verifies they agree numerically, then prunes the weights with
the attention-aware method and shows E.T.'s sparse execution winning.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.config import BERT_BASE
from repro.pruning import PruneMethod
from repro.runtime import (
    EncoderWeights,
    ETEngine,
    FasterTransformerLikeEngine,
    PyTorchLikeEngine,
    TensorRTLikeEngine,
)


def main() -> None:
    rng = np.random.default_rng(0)
    seq_len = 128
    x = rng.standard_normal((seq_len, BERT_BASE.d_model))

    # One encoder layer, dense, identical weights for every engine.
    weights = EncoderWeights.random(BERT_BASE, rng, num_layers=1)

    print(f"== Dense encoder layer ({BERT_BASE.name}, seqLen {seq_len}) ==")
    results = {}
    for cls in (PyTorchLikeEngine, TensorRTLikeEngine,
                FasterTransformerLikeEngine, ETEngine):
        engine = cls(weights)
        res = engine.run(x)
        results[engine.name] = res
        print(f"  {engine.name:18s} {res.latency_us:8.1f} us  "
              f"({res.timeline.num_kernels} kernels)")

    ref = results["pytorch"].output
    for name, res in results.items():
        assert np.allclose(res.output, ref, atol=1e-8), name
    print("  all engines numerically identical ✓")

    # Attention-aware pruning at 90%: E.T. compiles sparse formats.
    print("\n== Attention-aware pruning at 90% ==")
    pruned = EncoderWeights.random(BERT_BASE, np.random.default_rng(0), 1)
    pruned.prune(PruneMethod.ATTENTION_AWARE, 0.9)
    et = ETEngine(pruned)
    res = et.run(x)
    print(f"  E.T. (sparse)      {res.latency_us:8.1f} us  "
          f"attention impl: {res.choices['layer0.attention']}")
    trt = TensorRTLikeEngine(pruned).run(x)  # baselines can't exploit sparsity
    print(f"  TensorRT (dense)   {trt.latency_us:8.1f} us")
    print(f"  speedup            {trt.latency_us / res.latency_us:8.2f} x")

    # Still the same numerics (the baselines run the masked-dense weights).
    assert np.allclose(res.output, trt.output, atol=1e-8)
    print("  pruned execution matches masked-dense reference ✓")

    # Profiling counters, nvprof style.
    tl = res.timeline
    print("\n== E.T. profiling counters ==")
    print(f"  gld_transactions {tl.gld_transactions:>12,}")
    print(f"  gst_transactions {tl.gst_transactions:>12,}")
    print(f"  sm_efficiency    {tl.sm_efficiency:12.2%}")
    print(f"  achieved BW      {tl.achieved_bw_gbs:9.0f} GB/s")


if __name__ == "__main__":
    main()
