"""Sequence-length-aware attention dispatch (the Fig. 8 study, hands-on).

Sweeps sequence length for the BERT_BASE head geometry, printing the cost of
the TensorRT-style fused attention vs E.T.'s full and partial on-the-fly
operators, the adaptive engine's choice, and the Equation 6 shared-memory
budget at each length.

Run:  python examples/sequence_length_study.py
"""

import numpy as np

from repro.attention import (
    fused_attention,
    otf_attention,
    otf_crossover_seqlen,
    otf_smem_bytes,
    partial_otf_attention,
    select_attention,
)
from repro.config import BERT_BASE
from repro.gpu import Timeline, V100S
from repro.ops.context import fp16_ctx


def main() -> None:
    h, dk = BERT_BASE.num_heads, BERT_BASE.d_head
    rng = np.random.default_rng(0)
    print(f"{'seqLen':>6} {'TRT us':>8} {'OTF us':>8} {'partial':>8} "
          f"{'chosen':>12} {'smem/CTA':>9}")
    for s in (32, 64, 96, 128, 160, 192, 224, 256, 320, 384, 448):
        q, k, v = (rng.standard_normal((h, s, dk)) for _ in range(3))
        mask = np.zeros((s, s))
        times = []
        for fn in (fused_attention, otf_attention, partial_otf_attention):
            tl = Timeline()
            fn(fp16_ctx(tl), q, k, v, mask)
            times.append(tl.total_time_us)
        tl = Timeline()
        _, chosen = select_attention(fp16_ctx(tl), q, k, v, mask)
        smem = otf_smem_bytes(s, dk)
        print(f"{s:6d} {times[0]:8.1f} {times[1]:8.1f} {times[2]:8.1f} "
              f"{chosen:>12} {smem / 1024:7.1f}KB")

    tl = Timeline()
    co = otf_crossover_seqlen(fp16_ctx(tl), h, dk, with_mask=True)
    print(f"\ncost-model crossover: {co} (paper's empirical rule: 224)")
    print(f"V100S shared memory per SM: {V100S.smem_per_sm_bytes // 1024} KB")


if __name__ == "__main__":
    main()
