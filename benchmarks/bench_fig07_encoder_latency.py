"""Fig. 7 — one BERT_BASE encoder layer's latency vs sparsity, four engines.

Paper claims: E.T. outperforms PyTorch / TensorRT / FasterTransformer across
all sparsity levels, with maximum speedups of 13.7× / 3.4× / 2.5× as the
pruning ratio grows; below 40 % sparsity E.T. uses the best dense cuBLAS
routine (CUBLAS_GEMM_ALGO5_TENSOR_OP).
"""

from repro.eval.format import render_table
from repro.eval.latency import fig07_encoder_latency

from _util import emit, once


def test_fig07_encoder_latency(benchmark):
    res = once(benchmark, fig07_encoder_latency)

    headers = ["sparsity"] + list(res.latency_us)
    rows = []
    for i, sp in enumerate(res.sparsities):
        rows.append([sp] + [res.latency_us[k][i] for k in res.latency_us])
    rows.append(["max speedup (paper 13.7/3.4/2.5)",
                 res.max_speedup_over("pytorch"),
                 res.max_speedup_over("tensorrt"),
                 res.max_speedup_over("fastertransformer"), ""])
    emit("fig07_encoder_latency",
         render_table(headers, rows,
                      title="Fig.7 encoder latency us (BERT_BASE, s=128)"))

    assert 10 <= res.max_speedup_over("pytorch") <= 18
    assert 2.5 <= res.max_speedup_over("tensorrt") <= 4.5
    assert 1.8 <= res.max_speedup_over("fastertransformer") <= 3.5


def test_fig07_encoder_seqlen_sweep_per_device(benchmark):
    """Encoder-level view of the three-way attention crossover, per device.

    Runs one dense BERT_BASE encoder layer across sequence lengths on every
    modeled device and records which attention variant the engine's
    autotuned dispatch picked (``choices``), persisted as JSON next to the
    Fig. 8 crossover table.
    """
    import numpy as np

    from repro.config import BERT_BASE
    from repro.gpu.device import all_devices
    from repro.runtime import EncoderWeights, ETEngine

    from _util import emit_json

    seq_lens = (64, 128, 192, 256, 320, 384)

    def sweep():
        out = {}
        for dev in all_devices():
            rng = np.random.default_rng(0)
            w = EncoderWeights.random(BERT_BASE, rng, 1)
            eng = ETEngine(w, dev)
            rows = []
            for s in seq_lens:
                res = eng.run(rng.standard_normal((s, BERT_BASE.d_model)))
                rows.append({"seq_len": s,
                             "latency_us": res.latency_us,
                             "attention": res.choices["layer0.attention"]})
            out[dev.name] = rows
        return out

    per_dev = once(benchmark, sweep)
    emit_json("fig07_encoder_seqlen_sweep", per_dev)

    for name, rows in per_dev.items():
        assert rows[0]["attention"] == "otf", name
        assert rows[-1]["attention"] == "flash", name
