"""Fig. 7 — one BERT_BASE encoder layer's latency vs sparsity, four engines.

Paper claims: E.T. outperforms PyTorch / TensorRT / FasterTransformer across
all sparsity levels, with maximum speedups of 13.7× / 3.4× / 2.5× as the
pruning ratio grows; below 40 % sparsity E.T. uses the best dense cuBLAS
routine (CUBLAS_GEMM_ALGO5_TENSOR_OP).
"""

from repro.eval.format import render_table
from repro.eval.latency import fig07_encoder_latency

from _util import emit, once


def test_fig07_encoder_latency(benchmark):
    res = once(benchmark, fig07_encoder_latency)

    headers = ["sparsity"] + list(res.latency_us)
    rows = []
    for i, sp in enumerate(res.sparsities):
        rows.append([sp] + [res.latency_us[k][i] for k in res.latency_us])
    rows.append(["max speedup (paper 13.7/3.4/2.5)",
                 res.max_speedup_over("pytorch"),
                 res.max_speedup_over("tensorrt"),
                 res.max_speedup_over("fastertransformer"), ""])
    emit("fig07_encoder_latency",
         render_table(headers, rows,
                      title="Fig.7 encoder latency us (BERT_BASE, s=128)"))

    assert 10 <= res.max_speedup_over("pytorch") <= 18
    assert 2.5 <= res.max_speedup_over("tensorrt") <= 4.5
    assert 1.8 <= res.max_speedup_over("fastertransformer") <= 3.5
