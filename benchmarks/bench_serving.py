"""Serving bench — arrival rate × bucket policy on the virtual-time scheduler.

Not a paper figure: this sweeps the ISSUE-1 serving layer. Expectations the
table should show:

- higher arrival rates fill batches (mean batch size grows toward
  ``--max-batch``) and raise tail latency once the worker pool saturates;
- finer crossover-aligned bucket policies trade batch fullness for less
  length spread inside a batch; every policy keeps the full/partial-OTF
  regimes unmixed (the crossover is always a bucket edge).
"""

from repro.eval.format import render_table
from repro.serving import LoadgenSpec, run_loadgen

from _util import emit, once

RATES = (200.0, 1000.0, 5000.0)
POLICIES = ("single", "fine32", "fine64")


def _sweep():
    rows = []
    for rate in RATES:
        for policy in POLICIES:
            spec = LoadgenSpec(
                engine="et", model="small", rate_per_s=rate,
                num_requests=120, seed=0, max_seq_len=64, seq_step=16,
                policy=policy, workers=2, max_batch=8,
                max_wait_us=2_000.0, max_depth=64,
            )
            m = run_loadgen(spec).metrics.snapshot()
            # nothing is ever lost: served + shed = issued
            assert m["completed"] + m["rejected"] == spec.num_requests
            rows.append([
                rate, policy,
                m["p50_latency_us"], m["p95_latency_us"],
                m["p99_latency_us"], m["mean_batch_size"],
                m["throughput_seq_s"], int(m["rejected"]),
            ])
    return rows


def test_bench_serving(benchmark):
    rows = once(benchmark, _sweep)
    emit("serving_rate_x_policy",
         render_table(["rate req/s", "policy", "p50 us", "p95 us", "p99 us",
                       "mean batch", "seq/s", "rejected"],
                      rows, title="Serving — arrival rate × bucket policy"))

    by_rate = {r: [row for row in rows if row[0] == r] for r in RATES}
    # saturating load must batch more than trickle load (any policy)
    assert max(row[5] for row in by_rate[RATES[-1]]) > \
        max(row[5] for row in by_rate[RATES[0]])
    # every cell served real traffic
    for row in rows:
        assert row[6] > 0.0  # throughput seq/s
