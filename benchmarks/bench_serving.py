"""Serving bench — arrival rate × bucket policy on the virtual-time scheduler.

Not a paper figure: this sweeps the ISSUE-1 serving layer. Expectations the
table should show:

- higher arrival rates fill batches (mean batch size grows toward
  ``--max-batch``) and raise tail latency once the worker pool saturates;
- finer crossover-aligned bucket policies trade batch fullness for less
  length spread inside a batch; every policy keeps the full/partial-OTF
  regimes unmixed (the crossover is always a bucket edge).

Besides the pytest-benchmark sweep, ``python benchmarks/bench_serving.py
--json`` writes ``BENCH_serving.json`` at the repo root: the loadgen
serving metrics (throughput, p50/p95/p99 — identical for packed and
serial execution by construction), measured wall-clock speedups of the
packed batch path over per-request execution on the ET engine, and a
``pool`` section driving the same seeded request mix through the
thread-backed :class:`AsyncServer` and the multi-process
:class:`PoolServer` (2 replicas, shared-memory weights). Each backend is
measured as its CLI driver configures it — the pool's per-replica plan
caches, per-length memoization and packed execution are features of the
backend, not bench knobs. The loadgen section runs with per-bucket SLO
deadlines (``slo_us=0``) so attainment/goodput land in the report, and a
``telemetry`` section measures instrumentation overhead (flight recorder
alone, and with the per-kernel span tracer). The process exits nonzero if
packed execution is ever slower than serial at batch ≥ 8, if the pool's
outputs are not bitwise identical to the thread backend's, if pool
throughput at batch ≥ 8 falls below the thread backend, or if
instrumentation changes the rendered report or the flight recorder costs
more than the overhead sanity bound — what
CI's perf-smoke job checks (which also gates the report against
``BENCH_history.jsonl`` via ``tools/bench_history.py``).
"""

import argparse
import json
import os
import pathlib
import sys
import time

import numpy as np

from repro.config import small_config
from repro.eval.format import render_table
from repro.pruning import PruneMethod
from repro.runtime import EncoderWeights, ETEngine
from repro.serving import (
    AsyncServer,
    LoadgenSpec,
    make_policy,
    model_crossover,
    run_loadgen,
)
from repro.serving.loadgen import build_engine, build_payloads
from repro.serving.pool import build_pool_server, drive_server

from _util import emit, once

RATES = (200.0, 1000.0, 5000.0)
POLICIES = ("single", "fine32", "fine64")

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Wall-clock speedup grid: the serving sweet spot (short sequences, the
#: regime where per-request overhead dominates) at and above the
#: scheduler's default max_batch.
SPEEDUP_SEQ_LENS = (16, 32)
SPEEDUP_BATCHES = (8, 16, 32)


def _sweep():
    rows = []
    for rate in RATES:
        for policy in POLICIES:
            spec = LoadgenSpec(
                engine="et", model="small", rate_per_s=rate,
                num_requests=120, seed=0, max_seq_len=64, seq_step=16,
                policy=policy, workers=2, max_batch=8,
                max_wait_us=2_000.0, max_depth=64,
            )
            m = run_loadgen(spec).metrics.snapshot()
            # nothing is ever lost: served + shed = issued
            assert m["completed"] + m["rejected"] == spec.num_requests
            rows.append([
                rate, policy,
                m["p50_latency_us"], m["p95_latency_us"],
                m["p99_latency_us"], m["mean_batch_size"],
                m["throughput_seq_s"], int(m["rejected"]),
            ])
    return rows


def test_bench_serving(benchmark):
    rows = once(benchmark, _sweep)
    emit("serving_rate_x_policy",
         render_table(["rate req/s", "policy", "p50 us", "p95 us", "p99 us",
                       "mean batch", "seq/s", "rejected"],
                      rows, title="Serving — arrival rate × bucket policy"))

    by_rate = {r: [row for row in rows if row[0] == r] for r in RATES}
    # saturating load must batch more than trickle load (any policy)
    assert max(row[5] for row in by_rate[RATES[-1]]) > \
        max(row[5] for row in by_rate[RATES[0]])
    # every cell served real traffic
    for row in rows:
        assert row[6] > 0.0  # throughput seq/s


# ---- `--json` mode: BENCH_serving.json for CI's perf-smoke job ----------


def _bench_engine(seed: int = 0) -> ETEngine:
    """The serving-shaped engine the speedup grid measures (ET, pruned)."""
    cfg = small_config(name="serve-small", max_seq_len=64)
    weights = EncoderWeights.random(cfg, np.random.default_rng(seed), 1)
    weights.prune(PruneMethod.ATTENTION_AWARE, 0.8)
    return ETEngine(weights)


def measure_packed_speedup(engine: ETEngine, seq_len: int, batch: int,
                           repeats: int = 7, seed: int = 0) -> dict:
    """Best-of-``repeats`` wall-clock of one batch, packed vs per-request.

    Both paths produce bitwise identical results (tests/test_packed.py),
    so this is a pure execution-efficiency measurement.
    """
    rng = np.random.default_rng(seed)
    d_model = engine.weights.config.d_model
    xs = [rng.standard_normal((seq_len, d_model)) for _ in range(batch)]
    best: dict[bool, float] = {}
    for packed in (False, True):
        engine.run_batch(xs, packed=packed)  # warm caches and plans
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            engine.run_batch(xs, packed=packed)
            times.append(time.perf_counter() - t0)
        best[packed] = min(times)
    return {
        "seq_len": seq_len,
        "batch": batch,
        "serial_ms": round(best[False] * 1e3, 3),
        "packed_ms": round(best[True] * 1e3, 3),
        "speedup": round(best[False] / best[True], 2),
    }


def _summary_spec() -> LoadgenSpec:
    """The representative packed loadgen run (SLO: per-bucket defaults)."""
    return LoadgenSpec(
        engine="et", model="small", rate_per_s=1000.0, num_requests=120,
        seed=0, max_seq_len=64, seq_step=16, policy="fine64", workers=2,
        max_batch=8, max_wait_us=2_000.0, max_depth=64, packed=True,
        slo_us=0.0,
    )


def _loadgen_summary() -> dict:
    """One representative packed loadgen run's serving metrics.

    Runs with the flight recorder on so the report carries the per-stage
    waterfall totals/shares (``stage_time_us`` / ``stage_shares``) that
    the perf-history gate uses to name *which stage* regressed.
    """
    from repro.obs import EventLog, build_waterfalls, stage_shares, stage_totals

    spec = _summary_spec()
    events = EventLog()
    m = run_loadgen(spec, events=events).metrics.snapshot()
    waterfalls = build_waterfalls(events)
    totals = stage_totals(waterfalls)
    return {
        "engine": spec.engine,
        "model": spec.model,
        "rate_per_s": spec.rate_per_s,
        "num_requests": spec.num_requests,
        "policy": spec.policy,
        "max_batch": spec.max_batch,
        "throughput_seq_s": m["throughput_seq_s"],
        "p50_latency_us": m["p50_latency_us"],
        "p95_latency_us": m["p95_latency_us"],
        "p99_latency_us": m["p99_latency_us"],
        "mean_batch_size": m["mean_batch_size"],
        "completed": int(m["completed"]),
        "rejected": int(m["rejected"]),
        "slo_total": int(m["slo_total"]),
        "slo_met": int(m["slo_met"]),
        "slo_attainment": m["slo_attainment"],
        "goodput_seq_s": m["goodput_seq_s"],
        "stage_time_us": {k: round(v, 6) for k, v in totals.items()},
        "stage_shares": stage_shares(waterfalls),
    }


def measure_telemetry_overhead(repeats: int = 15) -> dict:
    """Wall-clock cost of instrumentation on the summary workload.

    Three arms, best-of-``repeats`` each: plain (null recorders), the
    flight recorder alone (``events``), and full deep profiling (events
    plus the per-kernel span tracer). All rendered reports must be
    byte-identical — observation never changes a reported number. The
    always-on instrumentation *hooks* (``events.enabled`` guards, SLO
    stamping) cost ≤ 2% by construction: the plain arm runs them and its
    deterministic metrics match the pre-instrumentation baseline exactly
    (the history gate checks this). The opt-in flight recorder adds a few
    percent *on this deliberately tiny model* (~2 us/event against ~150
    us/request of total work; negligible at production model sizes),
    gated loosely to tolerate shared-runner noise. The span tracer is an
    explicit profiling mode (one span per kernel, ~the cost of the
    modeled kernels themselves here) and is recorded but not gated.
    """
    from repro.obs import EventLog, Tracer

    spec = _summary_spec()
    run_loadgen(spec)  # warm plan caches for every arm

    # Interleave the arms round-robin so slow CPU-state drift (frequency
    # scaling, co-tenant noise) biases no arm; keep each arm's best.
    arms = {
        "plain": lambda: run_loadgen(spec),
        "events": lambda: run_loadgen(spec, events=EventLog()),
        "full": lambda: run_loadgen(spec, tracer=Tracer(),
                                    events=EventLog()),
    }
    best = {name: float("inf") for name in arms}
    reports = {}
    for _ in range(repeats):
        for name, run in arms.items():
            t0 = time.perf_counter()
            result = run()
            best[name] = min(best[name], time.perf_counter() - t0)
            reports[name] = result.report
    plain_s, events_s, full_s = best["plain"], best["events"], best["full"]
    plain_report, events_report, full_report = (
        reports["plain"], reports["events"], reports["full"])
    return {
        "repeats": repeats,
        "plain_s": round(plain_s, 4),
        "events_s": round(events_s, 4),
        "full_s": round(full_s, 4),
        "events_overhead_frac": round(max(0.0, events_s / plain_s - 1.0), 4),
        "full_overhead_frac": round(max(0.0, full_s / plain_s - 1.0), 4),
        "report_identical": plain_report == events_report == full_report,
    }


def _pool_spec(n_workers: int, num_requests: int = 96) -> LoadgenSpec:
    """The seeded workload both live backends serve (batches fill to 8)."""
    return LoadgenSpec(
        engine="et", model="small", rate_per_s=1000.0,
        num_requests=num_requests, seed=0, max_seq_len=64, seq_step=16,
        policy="fine64", workers=n_workers, max_batch=8,
        max_wait_us=2_000.0, max_depth=64, packed=True,
    )


def _best_drive(server, spec, payloads, repeats: int) -> tuple[float, list]:
    """Warm once, then best-of-``repeats`` wall clock of the seeded mix."""
    responses = drive_server(server, spec, payloads)  # warm plans/caches
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        responses = drive_server(server, spec, payloads)
        best = min(best, time.perf_counter() - t0)
    return best, responses


def measure_pool_vs_thread(n_workers: int = 2, repeats: int = 3) -> dict:
    """Pool-vs-thread throughput on the same seeded mix, plus bitwise check.

    Each backend runs exactly as its CLI driver builds it: the thread
    :class:`AsyncServer` with one engine per worker thread, the
    :class:`PoolServer` with ``n_workers`` replica processes attached to
    one shared-memory weight segment. Outputs must be bitwise identical
    (engine outputs are a pure function of the input sequence).
    """
    spec = _pool_spec(n_workers)
    payloads = build_payloads(spec)
    cfg = spec.model_config()
    engines = [build_engine(spec) for _ in range(n_workers)]
    crossover = model_crossover(cfg.num_heads, cfg.d_head, max(payloads),
                                device=engines[0].device)
    policy = make_policy(spec.policy, crossover, max(payloads))
    thread_server = AsyncServer(engines, policy, max_batch=spec.max_batch,
                                max_wait_us=spec.max_wait_us,
                                max_depth=spec.max_depth)
    with thread_server:
        thread_s, thread_resp = _best_drive(thread_server, spec, payloads,
                                            repeats)

    pool_server, pool_payloads, _, _ = build_pool_server(spec, n_workers)
    with pool_server:
        pool_s, pool_resp = _best_drive(pool_server, spec, pool_payloads,
                                        repeats)
        snapshot = pool_server.pool_snapshot()

    equal = len(thread_resp) == len(pool_resp) and all(
        a.output is not None and b.output is not None
        and np.array_equal(a.output, b.output)
        for a, b in zip(thread_resp, pool_resp))
    return {
        "workers": n_workers,
        "num_requests": spec.num_requests,
        "max_batch": spec.max_batch,
        "cpus": os.cpu_count(),
        "thread_s": round(thread_s, 4),
        "pool_s": round(pool_s, 4),
        "thread_seq_s": round(spec.num_requests / thread_s, 1),
        "pool_seq_s": round(spec.num_requests / pool_s, 1),
        "pool_vs_thread": round(thread_s / pool_s, 2),
        "outputs_bitwise_equal": equal,
        "steals": int(snapshot["steals"]),
        "shm_bytes": int(snapshot["shm_bytes"]),
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: ``--json`` writes BENCH_serving.json at repo root."""
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--json", action="store_true",
                    help="write BENCH_serving.json and exit nonzero if the "
                         "packed path is slower than serial at batch >= 8")
    ap.add_argument("--out", type=pathlib.Path,
                    default=REPO_ROOT / "BENCH_serving.json")
    ap.add_argument("--repeats", type=int, default=7)
    ap.add_argument("--pool-workers", type=int, default=2,
                    help="replica processes for the pool-vs-thread section "
                         "(0 skips it)")
    args = ap.parse_args(argv)
    if not args.json:
        ap.error("nothing to do: pass --json (the sweep runs under pytest)")

    engine = _bench_engine()
    grid = [measure_packed_speedup(engine, s, b, repeats=args.repeats)
            for s in SPEEDUP_SEQ_LENS for b in SPEEDUP_BATCHES]
    best = max(grid, key=lambda r: r["speedup"])
    telemetry = measure_telemetry_overhead()
    report = {
        "loadgen": _loadgen_summary(),
        "packed_speedup": grid,
        "best_speedup": best["speedup"],
        "best_config": {"seq_len": best["seq_len"], "batch": best["batch"]},
        "telemetry": telemetry,
    }
    pool = None
    if args.pool_workers > 0:
        pool = measure_pool_vs_thread(n_workers=args.pool_workers)
        report["pool"] = pool
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    print(render_table(
        ["seq_len", "batch", "serial ms", "packed ms", "speedup"],
        [[r["seq_len"], r["batch"], r["serial_ms"], r["packed_ms"],
          f'{r["speedup"]}x'] for r in grid],
        title=f"packed vs serial wall clock — {args.out}"))
    if pool is not None:
        print(render_table(
            ["backend", "workers", "wall s", "seq/s"],
            [["thread (AsyncServer)", pool["workers"], pool["thread_s"],
              pool["thread_seq_s"]],
             ["pool (PoolServer)", pool["workers"], pool["pool_s"],
              pool["pool_seq_s"]]],
            title=f'pool vs thread — {pool["num_requests"]} requests, '
                  f'batch {pool["max_batch"]}, {pool["cpus"]} cpus'))
    print(f"telemetry overhead: flight recorder "
          f"{telemetry['events_overhead_frac']:.1%}, full profiling "
          f"{telemetry['full_overhead_frac']:.1%} (plain "
          f"{telemetry['plain_s']}s, reports identical: "
          f"{telemetry['report_identical']})")
    failed = False
    slow = [r for r in grid if r["speedup"] < 1.0]
    if slow:
        print(f"FAIL: packed slower than serial at {slow}", file=sys.stderr)
        failed = True
    if not telemetry["report_identical"]:
        print("FAIL: instrumentation changed the rendered loadgen report",
              file=sys.stderr)
        failed = True
    if telemetry["events_overhead_frac"] > 0.15:
        print("FAIL: flight-recorder overhead "
              f"{telemetry['events_overhead_frac']:.1%} above the 15% CI "
              "sanity bound (design target 2%; the bound is wide because "
              "the bench model is tiny and shared runners are noisy)",
              file=sys.stderr)
        failed = True
    if pool is not None:
        if not pool["outputs_bitwise_equal"]:
            print("FAIL: pool outputs differ from thread backend",
                  file=sys.stderr)
            failed = True
        if pool["pool_seq_s"] < pool["thread_seq_s"]:
            print(f"FAIL: pool throughput {pool['pool_seq_s']} seq/s below "
                  f"thread backend {pool['thread_seq_s']} seq/s",
                  file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
