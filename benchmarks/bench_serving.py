"""Serving bench — arrival rate × bucket policy on the virtual-time scheduler.

Not a paper figure: this sweeps the ISSUE-1 serving layer. Expectations the
table should show:

- higher arrival rates fill batches (mean batch size grows toward
  ``--max-batch``) and raise tail latency once the worker pool saturates;
- finer crossover-aligned bucket policies trade batch fullness for less
  length spread inside a batch; every policy keeps the full/partial-OTF
  regimes unmixed (the crossover is always a bucket edge).

Besides the pytest-benchmark sweep, ``python benchmarks/bench_serving.py
--json`` writes ``BENCH_serving.json`` at the repo root: the loadgen
serving metrics (throughput, p50/p95/p99 — identical for packed and
serial execution by construction) plus measured wall-clock speedups of
the packed batch path over per-request execution on the ET engine. The
process exits nonzero if packed execution is ever slower than serial at
batch ≥ 8, which is what CI's perf-smoke job checks.
"""

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.config import small_config
from repro.eval.format import render_table
from repro.pruning import PruneMethod
from repro.runtime import EncoderWeights, ETEngine
from repro.serving import LoadgenSpec, run_loadgen

from _util import emit, once

RATES = (200.0, 1000.0, 5000.0)
POLICIES = ("single", "fine32", "fine64")

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Wall-clock speedup grid: the serving sweet spot (short sequences, the
#: regime where per-request overhead dominates) at and above the
#: scheduler's default max_batch.
SPEEDUP_SEQ_LENS = (16, 32)
SPEEDUP_BATCHES = (8, 16, 32)


def _sweep():
    rows = []
    for rate in RATES:
        for policy in POLICIES:
            spec = LoadgenSpec(
                engine="et", model="small", rate_per_s=rate,
                num_requests=120, seed=0, max_seq_len=64, seq_step=16,
                policy=policy, workers=2, max_batch=8,
                max_wait_us=2_000.0, max_depth=64,
            )
            m = run_loadgen(spec).metrics.snapshot()
            # nothing is ever lost: served + shed = issued
            assert m["completed"] + m["rejected"] == spec.num_requests
            rows.append([
                rate, policy,
                m["p50_latency_us"], m["p95_latency_us"],
                m["p99_latency_us"], m["mean_batch_size"],
                m["throughput_seq_s"], int(m["rejected"]),
            ])
    return rows


def test_bench_serving(benchmark):
    rows = once(benchmark, _sweep)
    emit("serving_rate_x_policy",
         render_table(["rate req/s", "policy", "p50 us", "p95 us", "p99 us",
                       "mean batch", "seq/s", "rejected"],
                      rows, title="Serving — arrival rate × bucket policy"))

    by_rate = {r: [row for row in rows if row[0] == r] for r in RATES}
    # saturating load must batch more than trickle load (any policy)
    assert max(row[5] for row in by_rate[RATES[-1]]) > \
        max(row[5] for row in by_rate[RATES[0]])
    # every cell served real traffic
    for row in rows:
        assert row[6] > 0.0  # throughput seq/s


# ---- `--json` mode: BENCH_serving.json for CI's perf-smoke job ----------


def _bench_engine(seed: int = 0) -> ETEngine:
    """The serving-shaped engine the speedup grid measures (ET, pruned)."""
    cfg = small_config(name="serve-small", max_seq_len=64)
    weights = EncoderWeights.random(cfg, np.random.default_rng(seed), 1)
    weights.prune(PruneMethod.ATTENTION_AWARE, 0.8)
    return ETEngine(weights)


def measure_packed_speedup(engine: ETEngine, seq_len: int, batch: int,
                           repeats: int = 7, seed: int = 0) -> dict:
    """Best-of-``repeats`` wall-clock of one batch, packed vs per-request.

    Both paths produce bitwise identical results (tests/test_packed.py),
    so this is a pure execution-efficiency measurement.
    """
    rng = np.random.default_rng(seed)
    d_model = engine.weights.config.d_model
    xs = [rng.standard_normal((seq_len, d_model)) for _ in range(batch)]
    best: dict[bool, float] = {}
    for packed in (False, True):
        engine.run_batch(xs, packed=packed)  # warm caches and plans
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            engine.run_batch(xs, packed=packed)
            times.append(time.perf_counter() - t0)
        best[packed] = min(times)
    return {
        "seq_len": seq_len,
        "batch": batch,
        "serial_ms": round(best[False] * 1e3, 3),
        "packed_ms": round(best[True] * 1e3, 3),
        "speedup": round(best[False] / best[True], 2),
    }


def _loadgen_summary() -> dict:
    """One representative packed loadgen run's serving metrics."""
    spec = LoadgenSpec(
        engine="et", model="small", rate_per_s=1000.0, num_requests=120,
        seed=0, max_seq_len=64, seq_step=16, policy="fine64", workers=2,
        max_batch=8, max_wait_us=2_000.0, max_depth=64, packed=True,
    )
    m = run_loadgen(spec).metrics.snapshot()
    return {
        "engine": spec.engine,
        "model": spec.model,
        "rate_per_s": spec.rate_per_s,
        "num_requests": spec.num_requests,
        "policy": spec.policy,
        "max_batch": spec.max_batch,
        "throughput_seq_s": m["throughput_seq_s"],
        "p50_latency_us": m["p50_latency_us"],
        "p95_latency_us": m["p95_latency_us"],
        "p99_latency_us": m["p99_latency_us"],
        "mean_batch_size": m["mean_batch_size"],
        "completed": int(m["completed"]),
        "rejected": int(m["rejected"]),
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: ``--json`` writes BENCH_serving.json at repo root."""
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--json", action="store_true",
                    help="write BENCH_serving.json and exit nonzero if the "
                         "packed path is slower than serial at batch >= 8")
    ap.add_argument("--out", type=pathlib.Path,
                    default=REPO_ROOT / "BENCH_serving.json")
    ap.add_argument("--repeats", type=int, default=7)
    args = ap.parse_args(argv)
    if not args.json:
        ap.error("nothing to do: pass --json (the sweep runs under pytest)")

    engine = _bench_engine()
    grid = [measure_packed_speedup(engine, s, b, repeats=args.repeats)
            for s in SPEEDUP_SEQ_LENS for b in SPEEDUP_BATCHES]
    best = max(grid, key=lambda r: r["speedup"])
    report = {
        "loadgen": _loadgen_summary(),
        "packed_speedup": grid,
        "best_speedup": best["speedup"],
        "best_config": {"seq_len": best["seq_len"], "batch": best["batch"]},
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    print(render_table(
        ["seq_len", "batch", "serial ms", "packed ms", "speedup"],
        [[r["seq_len"], r["batch"], r["serial_ms"], r["packed_ms"],
          f'{r["speedup"]}x'] for r in grid],
        title=f"packed vs serial wall clock — {args.out}"))
    slow = [r for r in grid if r["speedup"] < 1.0]
    if slow:
        print(f"FAIL: packed slower than serial at {slow}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
