"""Fig. 9 — speedup of the pre-computed linear transformation.

Paper setting: DistilBERT-style encoder on MRPC, seqLen 128; 50 % pruning
without pre-compute vs 80 % with it. Mean speedups of 1.1× / 1.3× / 1.6× for
d_model = 768 / 1024 / 2048 — larger models benefit more because the saving
is proportional to model size.
"""

from repro.eval.format import render_table
from repro.eval.latency import fig09_precompute

from _util import emit, once


def test_fig09_precompute(benchmark):
    res = once(benchmark, fig09_precompute)

    rows = []
    for d in res.d_models:
        rows.append([d] + res.speedup[d] + [res.mean_speedup(d)])
    emit("fig09_precompute",
         render_table(["d_model"] + [f"H={h}" for h in res.heads] + ["mean"],
                      rows,
                      title="Fig.9 pre-computed linear transform speedup "
                            "(paper means: 1.1/1.3/1.6)"))

    means = [res.mean_speedup(d) for d in res.d_models]
    assert all(m > 1.0 for m in means)
    assert means[0] < means[-1]  # larger d_model -> larger speedup
