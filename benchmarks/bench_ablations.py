"""Ablation benches for the design choices DESIGN.md calls out.

- §3.3: mixed-precision vs reordered pure-FP16 OTF attention.
- §5.2.1: GEMM-algorithm autotuning (DEFAULT vs CUBLAS_GEMM_ALGO5_TENSOR_OP).
- §3.2: inner-product (full OTF) vs outer-product (partial) traffic split.
- §7 discussion: the same experiment stack on an A100 device model.
"""

import numpy as np

from repro.attention import otf_attention, partial_otf_attention
from repro.config import BERT_BASE
from repro.eval.format import render_table
from repro.eval.latency import scaling_reorder_ablation
from repro.gpu import A100, Timeline
from repro.ops import GemmAlgo, gemm
from repro.ops.context import fp16_ctx
from repro.pruning import PruneMethod
from repro.runtime import EncoderWeights, ETEngine, TensorRTLikeEngine

from _util import emit, once


def test_ablation_scaling_reorder(benchmark):
    res = once(benchmark, scaling_reorder_ablation)
    emit("ablation_scaling_reorder",
         render_table(["variant", "us"],
                      [["pure FP16 (reordered scaling)", res.pure_fp16_us],
                       ["mixed precision (no reorder)",
                        res.mixed_precision_us],
                       ["speedup", res.speedup]],
                      title="§3.3 ablation: scaling reorder"))
    assert res.speedup > 1.1


def test_ablation_gemm_autotuning(benchmark):
    def run():
        rng = np.random.default_rng(0)
        x = rng.standard_normal((128, 768))
        w = rng.standard_normal((768, 768))
        out = {}
        for algo in GemmAlgo:
            tl = Timeline()
            gemm(fp16_ctx(tl), x, w.T, algo)
            out[algo.name] = tl.total_time_us
        return out

    times = once(benchmark, run)
    emit("ablation_gemm_autotune",
         render_table(["algorithm", "us"],
                      [[k, v] for k, v in times.items()],
                      title="§5.2.1 ablation: cuBLAS algorithm table "
                            "(128x768x768)"))
    assert times["ALGO5_TENSOR_OP"] == min(times.values())


def test_ablation_inner_vs_outer_product_traffic(benchmark):
    """§3.2: the traffic trade — full OTF re-loads K/V per tile; partial
    loads them once but round-trips S."""

    def run():
        rng = np.random.default_rng(0)
        h, dk = BERT_BASE.num_heads, BERT_BASE.d_head
        rows = []
        for s in (64, 128, 256, 384):
            q, k, v = (rng.standard_normal((h, s, dk)) for _ in range(3))
            tl_f = Timeline()
            otf_attention(fp16_ctx(tl_f), q, k, v)
            tl_p = Timeline()
            partial_otf_attention(fp16_ctx(tl_p), q, k, v)
            rows.append([s, tl_f.bytes_loaded / 1e6, tl_f.bytes_stored / 1e6,
                         tl_p.bytes_loaded / 1e6, tl_p.bytes_stored / 1e6])
        return rows

    rows = once(benchmark, run)
    emit("ablation_inner_vs_outer",
         render_table(["seqLen", "full load MB", "full store MB",
                       "partial load MB", "partial store MB"], rows,
                      title="§3.2 ablation: traffic of full vs partial OTF"))
    # full OTF always loads more and stores less than partial
    for r in rows:
        assert r[1] > r[3] and r[2] < r[4]


def test_ablation_a100_device(benchmark):
    """§7: the pruning + OTF wins carry to the A100 device model."""

    def run():
        rng = np.random.default_rng(0)
        x = rng.standard_normal((128, BERT_BASE.d_model))
        dense = EncoderWeights.random(BERT_BASE, rng, 1)
        pruned = EncoderWeights.random(BERT_BASE, np.random.default_rng(1), 1)
        pruned.prune(PruneMethod.ATTENTION_AWARE, 0.9)
        out = {}
        for dev in (None, A100):
            name = "V100S" if dev is None else "A100"
            out[name] = {
                "tensorrt": TensorRTLikeEngine(dense, dev).run(x).latency_us,
                "et@90%": ETEngine(pruned, dev).run(x).latency_us,
            }
        return out

    res = once(benchmark, run)
    rows = [[d, v["tensorrt"], v["et@90%"], v["tensorrt"] / v["et@90%"]]
            for d, v in res.items()]
    emit("ablation_a100",
         render_table(["device", "TensorRT us", "E.T.@90% us", "speedup"],
                      rows, title="§7 ablation: device portability"))
    for v in res.values():
        assert v["et@90%"] < v["tensorrt"]
    # A100 is faster in absolute terms
    assert res["A100"]["et@90%"] < res["V100S"]["et@90%"]


def test_ablation_tile_size(benchmark):
    """Tile-size design choice (§4.2 picks 16×16, the tensor-core FMA tile):
    smaller tiles prune more selectively but fragment the GEMM; larger tiles
    waste pruning budget. Latency at fixed 80 % sparsity."""
    from repro.ops import tile_gemm
    from repro.pruning.masks import tile_mask
    from repro.tensor.sparse import TileBCSR
    from repro.ops.context import fp16_ctx

    def run():
        rng = np.random.default_rng(0)
        x = rng.standard_normal((128, 768))
        w = rng.standard_normal((768, 768))
        out = {}
        for t in (8, 16, 32, 64):
            wm = w * tile_mask(w, 0.8, (t, t))
            tl = Timeline()
            tile_gemm(fp16_ctx(tl), x, TileBCSR.from_dense(wm, (t, t)))
            out[t] = tl.total_time_us
        return out

    times = once(benchmark, run)
    emit("ablation_tile_size",
         render_table(["tile", "us @80% sparsity"],
                      [[f"{t}x{t}", v] for t, v in times.items()],
                      title="§4.2 ablation: tile size (d=768)"))
    # all tile sizes execute correctly and in the same latency ballpark;
    # the 16x16 tensor-core tile is never worse than 8x8 (less metadata).
    assert times[16] <= times[8] * 1.1


def test_ablation_reweighted_lambda(benchmark):
    """λ sensitivity of the reweighted group lasso (§5.1 uses 1e-4 / 3e-4):
    stronger regularization concentrates tile energy, which is what makes
    percentile pruning safe. Measured as the Gini-style spread of tile
    norms after two regularized epochs."""
    from repro.config import small_config
    from repro.data import SyntheticWikiText, batchify
    from repro.nn import TrainConfig, Trainer, TransformerLM
    from repro.pruning import ReweightedGroupLasso

    def bottom_top_ratio(norms):
        """Energy of the weakest half of tiles relative to the strongest —
        the quantity percentile pruning destroys; the regularizer should
        drive it toward zero."""
        flat = np.sort(norms.reshape(-1))
        half = flat.size // 2
        top = float((flat[half:] ** 2).sum())
        return float((flat[:half] ** 2).sum()) / max(top, 1e-12)

    def run():
        cfg = small_config(name="lam", num_layers=2, d_model=32, num_heads=4,
                           vocab_size=96, max_seq_len=32)
        corpus = SyntheticWikiText(vocab_size=96, seed=0)
        batches = batchify(corpus.generate(4000), 8, 16)
        out = {}
        for lam in (0.0, 1e-4, 1e-3):
            model = TransformerLM(cfg, np.random.default_rng(0))
            reg = ReweightedGroupLasso(lam=lam, tile=(8, 8))
            Trainer(model, TrainConfig(epochs=3, lr=2e-3),
                    regularizer=reg.penalty,
                    epoch_callback=reg.update_betas).fit_lm(batches)
            snap = reg.tile_norm_snapshot(model)
            out[lam] = float(np.mean([bottom_top_ratio(v)
                                      for v in snap.values()]))
        return out

    ratios = once(benchmark, run)
    emit("ablation_lambda",
         render_table(["lambda", "bottom/top tile energy"],
                      [[f"{k:g}", v] for k, v in ratios.items()],
                      title="§4.2 ablation: reweighted-lasso strength "
                            "(1e-3 over-regularizes — the regime the "
                            "paper's 'stop increasing λ' rule avoids)"))
    # the paper's λ=1e-4 concentrates energy away from the weak tiles;
    # pushing λ an order of magnitude higher squashes strong tiles too,
    # which is exactly why Section 4.2 stops increasing λ when the
    # reweighted training accuracy drops.
    assert ratios[1e-4] < ratios[0.0]
