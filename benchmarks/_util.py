"""Benchmark output helpers: print and persist each figure's series."""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a figure's regenerated data and save it under results/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


def emit_json(name: str, payload: dict) -> None:
    """Persist a figure's machine-readable series under results/."""
    import json

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[saved {path}]")
