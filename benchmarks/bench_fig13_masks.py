"""Fig. 13 — mask structure of the Transformer's in_proj_weight (2400×800).

Four methods at 50 % pruning: (a) attention-aware — W_V row-pruned, the rest
tensor-tile pruned; (b) irregular; (c) column; (d) tensor-tile. The rendered
masks show the structural signature of each method.
"""

from repro.eval.accuracy_exp import fig13_masks

from _util import emit, once


def test_fig13_masks(benchmark):
    res = once(benchmark, fig13_masks)  # paper width d_model=800

    blocks = []
    for method in ("attention_aware", "irregular", "column", "tile"):
        m = res.masks[method]
        sp = 1.0 - m.mean()
        blocks.append(
            f"--- {method} (achieved sparsity {sp:.3f}, shape {m.shape}) ---\n"
            + res.ascii_art(method, rows=24, cols=48)
        )
    emit("fig13_masks", "\n\n".join(blocks))

    for m in res.masks.values():
        assert m.shape == (2400, 800)
        assert 1.0 - m.mean() == 0.5 or abs(1.0 - m.mean() - 0.5) < 0.02
    # attention-aware W_V block is row-structured
    wv = res.masks["attention_aware"][1600:].astype(bool)
    assert all(r.all() or not r.any() for r in wv)
