"""Fig. 10 — pruned linear-transformation speedup per method and sparsity.

Paper claims (vs the best dense cuBLAS routine): tile pruning reaches 3.5× /
3.2× at 95 % sparsity for d_model 768 / 1024; row and column pruning top out
around 1.2–1.7×; at equal sparsity tile pruning beats column pruning.
"""

import pytest

from repro.eval.format import render_table
from repro.eval.latency import fig10_pruned_gemm

from _util import emit, once


@pytest.mark.parametrize("d_model", [768, 1024])
def test_fig10_pruned_gemm(benchmark, d_model):
    res = once(benchmark, fig10_pruned_gemm, d_model)

    rows = []
    for i, sp in enumerate(res.sparsities):
        rows.append([sp,
                     res.speedup("row")[i],
                     res.speedup("column")[i],
                     res.speedup("tile")[i]])
    rows.append([f"dense baseline: {res.dense_us:.1f} us "
                 "(CUBLAS_GEMM_ALGO5_TENSOR_OP)", "", "", ""])
    emit(f"fig10_pruned_gemm_d{d_model}",
         render_table(["sparsity", "row x", "column x", "tile x"], rows,
                      title=f"Fig.10 pruned linear speedup, d_model={d_model}"))

    tile = res.speedup("tile")
    col = res.speedup("column")
    assert 2.0 <= tile[-1] <= 4.5  # paper 3.5 (768) / 3.2 (1024)
    assert all(t > c for t, c in zip(tile, col))
