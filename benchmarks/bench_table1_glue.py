"""Table 1 — GLUE scores, pruning ratios and latencies for BERT_BASE and
DistilBERT under irregular / column / tile / attention-aware pruning.

Paper structure this bench reproduces:
- per-task pruning ratios exactly as Table 1 reports them;
- WNLI pinned at the majority class for every method;
- accuracy ordering irregular ≥ attention-aware ≈ tile > column;
- latency ordering attention-aware < tile < column << irregular, with
  irregular ~39–44× slower on average;
- absolute average latencies ~1.1 ms (BERT_BASE) / ~0.5 ms (DistilBERT) for
  attention-aware pruning.

Accuracies come from real training at reduced scale; latencies from the
V100S cost model at full scale with Table 1's ratios.
"""

import pytest

from repro.eval.accuracy_exp import SMALL, table1
from repro.eval.format import render_table

from _util import emit, once

# The stable training recipe (512 examples, 8 warmed-up fine-tune epochs);
# one model's block takes a few minutes.
BENCH_SCALE = SMALL


@pytest.mark.parametrize("model_name", ["BERT_BASE", "DistilBERT"])
def test_table1_glue(benchmark, model_name):
    res = once(benchmark, table1, model_name, scale=BENCH_SCALE)

    tasks = list(res.baseline.scores)
    headers = ["row"] + tasks + ["AVG"]
    rows = [["baseline score"] + [res.baseline.scores[t] for t in tasks]
            + [res.baseline.avg_score]]
    for name, row in res.methods.items():
        rows.append([f"{name} score"] + [row.scores[t] for t in tasks]
                    + [row.avg_score])
        rows.append([f"{name} ratio"] + [row.ratios[t] for t in tasks]
                    + [row.avg_ratio])
        rows.append([f"{name} latency ms"] + [row.latency_ms[t] for t in tasks]
                    + [row.avg_latency_ms])
    emit(f"table1_{model_name}",
         render_table(headers, rows, title=f"Table 1 — {model_name}"))

    aa = res.methods["attention_aware"]
    tile = res.methods["tile"]
    col = res.methods["column"]
    irr = res.methods["irregular"]

    # Latency structure (the paper's headline: 39-44x vs irregular).
    assert aa.avg_latency_ms <= tile.avg_latency_ms
    assert tile.avg_latency_ms < col.avg_latency_ms
    assert irr.avg_latency_ms / aa.avg_latency_ms > 15
    # WNLI collapses to (near) the majority class for every method — far
    # below the learnable tasks' scores. The bound allows for dev-set
    # majority sampling noise at this dev size.
    for row in res.methods.values():
        assert row.scores["WNLI"] <= 0.70
        assert row.scores["WNLI"] < min(
            v for t, v in row.scores.items() if t != "WNLI") - 0.1
    # Absolute latency scale (paper: ~1.12 ms BERT / ~0.53 ms DistilBERT).
    expected = 1.12 if model_name == "BERT_BASE" else 0.53
    assert 0.4 * expected <= aa.avg_latency_ms <= 2.5 * expected
