"""Fig. 8 — attention implementations across sequence length.

Paper claims: full or partial OTF beats the TensorRT attention plugin in all
cases (avg 2.5× on Transformer, 3.3× on BERT_BASE for 64–256); full OTF wins
short sequences (~1.4–1.5×) and partial OTF takes over beyond seqLen ≈ 224.
"""

import pytest

from repro.eval.format import render_table
from repro.eval.latency import fig08_attention

from _util import emit, once


@pytest.mark.parametrize("model", ["BERT_BASE", "Transformer"])
def test_fig08_attention(benchmark, model):
    res = once(benchmark, fig08_attention, model)

    rows = [
        [s, t, o, p, t / min(o, p)]
        for s, t, o, p in zip(res.seq_lens, res.tensorrt_us, res.otf_us,
                              res.partial_otf_us)
    ]
    rows.append([f"crossover (paper ~224): {res.crossover}", "", "", "", ""])
    emit(f"fig08_attention_{model}",
         render_table(["seqLen", "TensorRT us", "OTF us", "partial OTF us",
                       "speedup"],
                      rows, title=f"Fig.8 attention latency — {model}"))

    assert all(s > 1.0 for s in res.speedup_over_trt())
    assert 192 <= res.crossover <= 272
