"""Fig. 8 — attention implementations across sequence length.

Paper claims: full or partial OTF beats the TensorRT attention plugin in all
cases (avg 2.5× on Transformer, 3.3× on BERT_BASE for 64–256); full OTF wins
short sequences (~1.4–1.5×) and partial OTF takes over beyond seqLen ≈ 224.

Re-study: the flash variant (online-softmax tiling, no S materialization)
re-attacks that crossover. The bench now runs the comparison three-way on
every modeled device and emits the per-device crossover seqLens as JSON
(``results/fig08_crossovers.json``) alongside the tables.
"""

import pytest

from repro.eval.format import render_table
from repro.eval.latency import fig08_attention
from repro.gpu.device import all_devices

from _util import emit, emit_json, once


@pytest.mark.parametrize("model", ["BERT_BASE", "Transformer"])
def test_fig08_attention(benchmark, model):
    res = once(benchmark, fig08_attention, model)

    rows = [
        [s, t, o, p, f, res.winner(i), t / min(o, p, f)]
        for i, (s, t, o, p, f) in enumerate(
            zip(res.seq_lens, res.tensorrt_us, res.otf_us,
                res.partial_otf_us, res.flash_us))
    ]
    rows.append([f"otf->partial crossover (paper ~224): {res.crossover}",
                 "", "", "", "", "", ""])
    rows.append([f"flash takes over at: {res.flash_crossover}",
                 "", "", "", "", "", ""])
    emit(f"fig08_attention_{model}",
         render_table(["seqLen", "TensorRT us", "OTF us", "partial OTF us",
                       "flash us", "winner", "speedup"],
                      rows, title=f"Fig.8 attention latency — {model}"))

    assert all(s > 1.0 for s in res.speedup_over_trt())
    assert 192 <= res.crossover <= 272
    if model == "BERT_BASE":
        # Flash takes over before the paper's OTF→partial switch point.
        assert res.flash_crossover is not None
        assert res.flash_crossover <= res.crossover
    else:
        # Transformer WT2 (4 heads, d_head 200): the coarse flash grid
        # never fills the device and the wide head forces fallback tiles —
        # flash never wins, which is exactly what the per-device/per-model
        # study is for.
        assert res.flash_crossover is None


def test_fig08_per_device_crossovers(benchmark):
    """Three-way winner table on every modeled device, persisted as JSON."""

    def sweep():
        return {dev.name: fig08_attention(device=dev) for dev in all_devices()}

    per_dev = once(benchmark, sweep)
    payload = {}
    for name, res in per_dev.items():
        payload[name] = {
            "model": res.model,
            "seq_lens": res.seq_lens,
            "winners": [res.winner(i) for i in range(len(res.seq_lens))],
            "otf_partial_crossover": res.crossover,
            "flash_crossover": res.flash_crossover,
        }
    emit_json("fig08_crossovers", payload)

    for name, res in per_dev.items():
        # Every device keeps the paper's short-sequence OTF win and sees
        # flash take over by the end of the sweep.
        assert payload[name]["winners"][0] == "otf", name
        assert payload[name]["winners"][-1] == "flash", name
        assert res.flash_crossover is not None, name
