"""Fig. 1 — single-encoder time: E.T. (80 % attention-aware pruning) vs the
TensorRT implementation, with the per-phase breakdown.

Paper claim: E.T. reduces one encoder's computation time by ~2.5× on the
WikiText-2 Transformer at sequence length 128.
"""

from repro.eval.format import render_table
from repro.eval.latency import fig01_breakdown

from _util import emit, once


def test_fig01_breakdown(benchmark):
    res = once(benchmark, fig01_breakdown)

    rows = [["total", res.trt_total_us, res.et_total_us]]
    tags = sorted(set(res.trt_breakdown) | set(res.et_breakdown))
    for tag in tags:
        rows.append([tag, res.trt_breakdown.get(tag, 0.0),
                     res.et_breakdown.get(tag, 0.0)])
    rows.append(["speedup (paper ~2.5x)", res.speedup, ""])
    emit("fig01_breakdown",
         render_table(["phase", "TensorRT us", "E.T. us"], rows,
                      title="Fig.1 encoder breakdown (Transformer, s=128, "
                            "80% pruned)"))
    assert 1.8 <= res.speedup <= 3.2
