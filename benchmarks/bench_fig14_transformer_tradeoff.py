"""Fig. 14 — Transformer on WikiText-2: accuracy & latency vs pruning ratio.

Paper claims: all methods hold accuracy up to ~85 % pruning; the SVD
low-rank baseline underperforms every pruning method; irregular pruning is
~19× slower than the structured methods; attention-aware pruning averages
1.19× / 1.05× faster than column / tile pruning.

Accuracy comes from real training at reduced scale (see
repro.eval.accuracy_exp.Scale); latency from the V100S cost model at the
paper-scale Transformer (L=2, d_model=800, H=4).
"""

import numpy as np

from repro.eval.accuracy_exp import Scale, fig14_transformer
from repro.eval.format import render_table

from _util import emit, once

#: Benchmark-friendly scale: each (method, ratio) cell trains in a couple of
#: seconds; EXPERIMENTS.md records a larger run.
BENCH_SCALE = Scale(n_train=320, n_dev=128, epochs_reweighted=2,
                    epochs_retrain=3, epochs_pretrain=12)

RATIOS = (0.5, 0.7, 0.9)


def test_fig14_transformer_tradeoff(benchmark):
    res = once(benchmark, fig14_transformer, RATIOS, scale=BENCH_SCALE)

    methods = list(res.accuracy)
    rows = [["baseline", res.baseline_accuracy, ""]]
    for m in methods:
        for r, acc, lat in zip(res.ratios, res.accuracy[m], res.latency_us[m]):
            rows.append([f"{m}@{r}", acc,
                         lat if np.isfinite(lat) else "n/a"])
    emit("fig14_transformer_tradeoff",
         render_table(["method@ratio", "next-word acc", "latency us"], rows,
                      title="Fig.14 Transformer accuracy & latency vs ratio"))

    # (a) moderate pruning keeps most accuracy for structured methods
    for m in ("tile", "attention_aware"):
        assert res.accuracy[m][0] > 0.6 * res.baseline_accuracy
    # (b) irregular is drastically slower than the structured methods
    assert res.latency_us["irregular"][0] > 8 * res.latency_us["tile"][0]
    # attention-aware ~ tile on the Transformer (paper's avg gap is 1.05x;
    # at H=4 the row-pruned V's attention savings roughly offset tile's
    # fuller GEMM utilization), and both clearly beat column pruning.
    aa_avg = float(np.mean(res.latency_us["attention_aware"]))
    tile_avg = float(np.mean(res.latency_us["tile"]))
    assert aa_avg <= tile_avg * 1.08
    for i in range(len(RATIOS)):
        assert res.latency_us["attention_aware"][i] < \
            res.latency_us["column"][i]
