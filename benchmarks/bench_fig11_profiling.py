"""Fig. 11 — nvprof-style counters: OTF attention vs the TensorRT chain.

Paper measurements at seqLen 128, BERT_BASE: the OTF kernel loads ~1.8× more
(gld_transactions) but stores ~5× less (gst_transactions), and gains ~30 %
sm_efficiency and ~22 % IPC — the reduced store traffic is on the critical
path, the extra loads are not.
"""

from repro.eval.format import render_table
from repro.eval.latency import fig11_profiling

from _util import emit, once


def test_fig11_profiling(benchmark):
    res = once(benchmark, fig11_profiling)

    keys = ["gld_transactions", "gst_transactions", "sm_efficiency", "ipc",
            "total_time_us", "num_kernels"]
    rows = [[k, res.trt[k], res.otf[k]] for k in keys]
    rows += [
        ["load ratio (paper ~1.8x)", "", res.load_ratio],
        ["store saving (paper ~5x)", "", res.store_saving],
        ["sm_efficiency boost (paper ~30%)", "", res.sm_efficiency_boost],
        ["ipc boost (paper ~22%)", "", res.ipc_boost],
    ]
    emit("fig11_profiling",
         render_table(["counter", "TensorRT", "E.T. OTF"], rows,
                      title="Fig.11 attention profiling (BERT_BASE, s=128)"))

    assert 1.5 <= res.load_ratio <= 2.6
    assert 4.0 <= res.store_saving <= 6.0
    assert res.sm_efficiency_boost > 0.15
    assert res.ipc_boost > 0.05
