"""Fig. 4 — FP16 overflow heatmap of Q·Kᵀ and the scaling-reorder fix.

Paper setting: Transformer on WikiText-2, sequence length 16, word-embedding
dimension 256. The heatmap shows the *majority* of entries overflowing in
pure FP16 when scaling happens after the product; moving the ``1/√d_k``
scaling onto Q (step ② before step ③) eliminates overflow while producing
identical results.
"""

import numpy as np

from repro.attention import OverflowStudy
from repro.eval.format import render_table

from _util import emit, once


def _run() -> OverflowStudy:
    # Coherently accumulating activations, as trained Q/K projections
    # produce (zero-mean noise would need implausible magnitudes to
    # overflow; see DESIGN.md).
    rng = np.random.default_rng(0)
    h, s, d = 2, 16, 256
    q = 18.0 + 5.0 * rng.standard_normal((h, s, d))
    k = 18.0 + 5.0 * rng.standard_normal((h, s, d))
    return OverflowStudy.run(q, k)


def test_fig04_overflow(benchmark):
    study = once(benchmark, _run)
    rows = [
        ["post-scale, pure FP16 (Fig. 4's shaded map)",
         study.post_scale_fp16],
        ["pre-scale (E.T. reorder), pure FP16", study.pre_scale_fp16],
        ["post-scale, mixed precision", study.post_scale_mixed],
        ["post-scale, BF16 (A100/TPU mode, §2.2)", study.post_scale_bf16],
        ["BF16 median relative error", study.bf16_rel_error],
        ["max |pre - post| in exact arithmetic", study.max_abs_error],
    ]
    emit("fig04_overflow",
         render_table(["design", "overflow fraction"], rows,
                      title="Fig.4 Q.K^T overflow (s=16, d=256)"))
    assert study.post_scale_fp16 > 0.5
    assert study.pre_scale_fp16 == 0.0
    assert study.max_abs_error < 1e-9
