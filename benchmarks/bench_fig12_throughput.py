"""Fig. 12 — achieved DRAM throughput of TensorRT's encoder steps vs E.T.

Paper measurements: TensorRT's memory-bound attention-region operators
average 98 GB/s (8.6 % of the V100S's 1,134 GB/s peak) while the single E.T.
OTF kernel achieves 311 GB/s (27.5 %).
"""

from repro.eval.format import render_table
from repro.eval.latency import fig12_throughput

from _util import emit, once


def test_fig12_throughput(benchmark):
    res = once(benchmark, fig12_throughput)

    rows = [[name, bw] for name, bw in res.trt_steps]
    rows += [
        ["TensorRT average (paper 98 GB/s)", res.trt_avg_gbs],
        ["E.T. OTF kernel (paper 311 GB/s)", res.otf_gbs],
    ]
    emit("fig12_throughput",
         render_table(["kernel", "GB/s"], rows,
                      title="Fig.12 achieved memory throughput"))

    assert 70 <= res.trt_avg_gbs <= 140
    assert 250 <= res.otf_gbs <= 430


def test_fig12_roofline_classification(benchmark):
    """Section 5.2.6's footing for Fig. 12: the attention-region operators
    are all memory bound (arithmetic intensity below the ridge point; the
    highest among steps ①–⑦ is step ① at ~128)."""
    import numpy as np

    from repro.config import BERT_BASE
    from repro.runtime import EncoderWeights, TensorRTLikeEngine

    def run():
        rng = np.random.default_rng(0)
        x = rng.standard_normal((128, BERT_BASE.d_model))
        w = EncoderWeights.random(BERT_BASE, rng, 1)
        res = TensorRTLikeEngine(w).run(x)
        return res.timeline.roofline_report()

    report = once(benchmark, run)
    rows = [[r["kernel"], r["arithmetic_intensity"], r["ridge_point"],
             "mem" if r["memory_bound"] else "compute", r["achieved_gbs"]]
            for r in report]
    emit("fig12_roofline",
         render_table(["kernel", "AI FLOP/B", "ridge", "bound", "GB/s"],
                      rows, title="§5.2.6 roofline classification"))
    attn = [r for r in report
            if r["kernel"] in ("qk_t", "masked_softmax", "sv")]
    assert attn and all(r["memory_bound"] for r in attn)
    assert max(r["arithmetic_intensity"] for r in report) < 138
